#![warn(missing_docs)]

//! Benchmark kernels for the Clockhands reproduction.
//!
//! The paper evaluates CoreMark plus four SPEC CPU benchmarks (401.bzip2,
//! 605.mcf_s, 619.lbm_s, 657.xz_s). SPEC sources and inputs are licensed,
//! so this crate provides Kern kernels that reproduce each benchmark's
//! *dominant behaviour* (see DESIGN.md for the substitution argument):
//!
//! * [`Workload::Coremark`] — linked-list traversal, a small integer
//!   matrix multiply, and a state machine with CRC accumulation.
//! * [`Workload::Bzip2`] — run-length + move-to-front coding with
//!   frequency counting over pseudo-random bytes (branchy byte work).
//! * [`Workload::Mcf`] — arc-relaxation over a sparse graph with helper
//!   functions called inside the hot loop (pointer chasing + calls).
//! * [`Workload::Lbm`] — a floating-point stencil streaming over a grid
//!   (long-lived FP values).
//! * [`Workload::Xz`] — an LZ77-style hash-chain match finder that
//!   saturates the integer units.
//!
//! Every kernel generates its input with an in-kernel LCG, returns a
//! checksum, and has a bit-exact Rust [`reference`](Workload::reference)
//! used to validate all three compiled ISAs.

mod kernels;

use ch_compiler::{compile, CompileError, CompiledSet};

/// Benchmark selection (paper naming in [`Workload::paper_name`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Workload {
    /// CoreMark analogue.
    Coremark,
    /// 401.bzip2 analogue.
    Bzip2,
    /// 605.mcf_s analogue.
    Mcf,
    /// 619.lbm_s analogue.
    Lbm,
    /// 657.xz_s analogue.
    Xz,
}

/// Problem size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scale {
    /// Tiny: suitable for unit tests (≈10⁴–10⁵ instructions).
    Test,
    /// Small: for quick simulations (≈10⁶ instructions).
    Small,
    /// Full: for the headline figures (≈10⁷ instructions).
    Full,
}

impl Workload {
    /// All workloads in the paper's figure order.
    pub const ALL: [Workload; 5] = [
        Workload::Coremark,
        Workload::Bzip2,
        Workload::Mcf,
        Workload::Lbm,
        Workload::Xz,
    ];

    /// Short identifier (used in file names and tables).
    pub fn name(self) -> &'static str {
        match self {
            Workload::Coremark => "coremark",
            Workload::Bzip2 => "bzip2",
            Workload::Mcf => "mcf",
            Workload::Lbm => "lbm",
            Workload::Xz => "xz",
        }
    }

    /// The benchmark name used in the paper's figures.
    pub fn paper_name(self) -> &'static str {
        match self {
            Workload::Coremark => "CoreMark",
            Workload::Bzip2 => "401.bzip2",
            Workload::Mcf => "605.mcf_s",
            Workload::Lbm => "619.lbm_s",
            Workload::Xz => "657.xz_s",
        }
    }

    /// The Kern source of the kernel at the given scale.
    pub fn source(self, scale: Scale) -> String {
        match self {
            Workload::Coremark => kernels::coremark::source(scale),
            Workload::Bzip2 => kernels::bzip2::source(scale),
            Workload::Mcf => kernels::mcf::source(scale),
            Workload::Lbm => kernels::lbm::source(scale),
            Workload::Xz => kernels::xz::source(scale),
        }
    }

    /// Bit-exact Rust reference checksum for validation.
    pub fn reference(self, scale: Scale) -> u64 {
        match self {
            Workload::Coremark => kernels::coremark::reference(scale),
            Workload::Bzip2 => kernels::bzip2::reference(scale),
            Workload::Mcf => kernels::mcf::reference(scale),
            Workload::Lbm => kernels::lbm::reference(scale),
            Workload::Xz => kernels::xz::reference(scale),
        }
    }

    /// Compiles the kernel for all three ISAs.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`CompileError`] (a kernel that fails to
    /// compile is a bug in this crate).
    pub fn compile(self, scale: Scale) -> Result<CompiledSet, CompileError> {
        compile(&self.source(scale))
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_baselines::{riscv, straight};
    use clockhands::interp::Interpreter as ChInterp;

    /// Instruction budget generous enough for Test scale on every ISA.
    const LIMIT: u64 = 80_000_000;

    #[test]
    fn all_kernels_agree_across_isas_and_reference() {
        for w in Workload::ALL {
            let expect = w.reference(Scale::Test);
            let set = w
                .compile(Scale::Test)
                .unwrap_or_else(|e| panic!("{w}: {e}"));

            let rv = riscv::interp::Interpreter::new(set.riscv)
                .unwrap()
                .run(LIMIT)
                .unwrap_or_else(|e| panic!("{w}/riscv: {e}"));
            assert_eq!(rv.exit_value, expect, "{w}: RISC-V checksum");

            let st = straight::interp::Interpreter::new(set.straight)
                .unwrap()
                .run(LIMIT)
                .unwrap_or_else(|e| panic!("{w}/straight: {e}"));
            assert_eq!(st.exit_value, expect, "{w}: STRAIGHT checksum");

            let ch = ChInterp::new(set.clockhands)
                .unwrap()
                .run(LIMIT)
                .unwrap_or_else(|e| panic!("{w}/clockhands: {e}"));
            assert_eq!(ch.exit_value, expect, "{w}: Clockhands checksum");

            // The paper's Fig. 15 ordering: STRAIGHT executes the most
            // instructions.
            assert!(
                st.committed > rv.committed,
                "{w}: STRAIGHT should execute more instructions ({} vs {})",
                st.committed,
                rv.committed
            );
        }
    }

    #[test]
    fn scales_are_ordered() {
        let w = Workload::Coremark;
        let t = riscv::interp::Interpreter::new(w.compile(Scale::Test).unwrap().riscv)
            .unwrap()
            .run(LIMIT)
            .unwrap();
        let s = riscv::interp::Interpreter::new(w.compile(Scale::Small).unwrap().riscv)
            .unwrap()
            .run(LIMIT)
            .unwrap();
        assert!(s.committed > t.committed);
    }

    #[test]
    fn paper_names() {
        assert_eq!(Workload::Mcf.paper_name(), "605.mcf_s");
        assert_eq!(Workload::Coremark.to_string(), "CoreMark");
    }
}
