//! Random straight-line assembly generators, one per ISA.
//!
//! Each generator emits a well-formed text program (every source operand
//! refers to a value that has actually been produced, distances are
//! encodable, the program ends in `halt`), used for two properties:
//!
//! * `assemble(disassemble(assemble(text)))` round-trips structurally on
//!   all three ISAs, and
//! * the functional interpreters execute the program without error.
//!
//! The generators stay straight-line (no branches) on purpose: control
//! flow is exercised by the Kern generator through the compiler; these
//! target the assembler/encoder/operand-resolution layers directly.

use proptest::TestRng;
use std::fmt::Write as _;

const ALU2: [&str; 20] = [
    "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and", "addw", "subw", "sllw",
    "srlw", "sraw", "mul", "div", "divu", "rem", "remu",
];
const ALUI: [&str; 13] = [
    "addi", "slti", "sltiu", "xori", "ori", "andi", "slli", "srli", "srai", "addiw", "slliw",
    "srliw", "sraiw",
];

fn imm14(rng: &mut TestRng) -> i64 {
    rng.below(16_000) as i64 - 8_000
}

/// Random straight-line Clockhands program (always halts; every source
/// distance is `< 16` (`< 15` on the s hand) and refers to a produced
/// value).
pub fn gen_clockhands(rng: &mut TestRng, len: usize) -> String {
    const HANDS: [&str; 4] = ["t", "u", "v", "s"];
    let mut writes = [0u64; 4];
    let mut out = String::new();
    // Seed every hand so sources always exist.
    for (h, w) in HANDS.iter().zip(writes.iter_mut()) {
        let _ = writeln!(out, "li {h}, {}", rng.below(1000));
        *w += 1;
    }
    let src = |rng: &mut TestRng, writes: &[u64; 4]| -> String {
        if rng.below(8) == 0 {
            return "zero".to_string();
        }
        let h = rng.below(4) as usize;
        let cap = if h == 3 { 15 } else { 16 };
        let d = rng.below(writes[h].min(cap));
        format!("{}[{d}]", HANDS[h])
    };
    for _ in 0..len {
        let dst = rng.below(4) as usize;
        match rng.below(4) {
            0 => {
                let _ = writeln!(out, "li {}, {}", HANDS[dst], imm14(rng));
            }
            1 => {
                let op = ALUI[rng.below(ALUI.len() as u64) as usize];
                let a = src(&mut *rng, &writes);
                let _ = writeln!(out, "{op} {}, {a}, {}", HANDS[dst], imm14(rng));
            }
            2 => {
                let a = src(&mut *rng, &writes);
                let _ = writeln!(out, "mv {}, {a}", HANDS[dst],);
            }
            _ => {
                let op = ALU2[rng.below(ALU2.len() as u64) as usize];
                let a = src(&mut *rng, &writes);
                let b = src(&mut *rng, &writes);
                let _ = writeln!(out, "{op} {}, {a}, {b}", HANDS[dst]);
            }
        }
        writes[dst] += 1;
    }
    let a = src(&mut *rng, &writes);
    let _ = writeln!(out, "halt {a}");
    out
}

/// Random straight-line STRAIGHT program: every instruction occupies a
/// ring slot; all distances are in `1..=min(slots, 127)`.
pub fn gen_straight(rng: &mut TestRng, len: usize) -> String {
    let mut out = String::new();
    let mut slots = 0u64; // value-producing instructions so far
    let _ = writeln!(out, "li {}", rng.below(1000));
    slots += 1;
    let src = |rng: &mut TestRng, slots: u64| -> String {
        match rng.below(10) {
            0 => "zero".to_string(),
            1 => "sp".to_string(),
            _ => format!("[{}]", 1 + rng.below(slots.min(127))),
        }
    };
    for _ in 0..len {
        match rng.below(4) {
            0 => {
                let _ = writeln!(out, "li {}", imm14(rng));
            }
            1 => {
                let op = ALUI[rng.below(ALUI.len() as u64) as usize];
                let a = src(&mut *rng, slots);
                let _ = writeln!(out, "{op} {a}, {}", imm14(rng));
            }
            2 => {
                let a = src(&mut *rng, slots);
                let _ = writeln!(out, "mv {a}");
            }
            _ => {
                let op = ALU2[rng.below(ALU2.len() as u64) as usize];
                let a = src(&mut *rng, slots);
                let b = src(&mut *rng, slots);
                let _ = writeln!(out, "{op} {a}, {b}");
            }
        }
        slots += 1;
    }
    let a = src(&mut *rng, slots);
    let _ = writeln!(out, "halt {a}");
    out
}

/// Random straight-line RISC-V program over a pool of integer registers.
pub fn gen_riscv(rng: &mut TestRng, len: usize) -> String {
    const REGS: [&str; 12] = [
        "a0", "a1", "a2", "a3", "a4", "t0", "t1", "t2", "s1", "s2", "s3", "s4",
    ];
    let mut out = String::new();
    // Initialize the whole pool so any register is a valid source.
    for r in REGS {
        let _ = writeln!(out, "li {r}, {}", rng.below(1000));
    }
    let src = |rng: &mut TestRng| -> &'static str {
        if rng.below(8) == 0 {
            "zero"
        } else {
            REGS[rng.below(REGS.len() as u64) as usize]
        }
    };
    for _ in 0..len {
        let dst = REGS[rng.below(REGS.len() as u64) as usize];
        match rng.below(4) {
            0 => {
                let _ = writeln!(out, "li {dst}, {}", imm14(rng));
            }
            1 => {
                let op = ALUI[rng.below(ALUI.len() as u64) as usize];
                let a = src(&mut *rng);
                let _ = writeln!(out, "{op} {dst}, {a}, {}", imm14(rng));
            }
            2 => {
                let a = src(&mut *rng);
                let _ = writeln!(out, "mv {dst}, {a}");
            }
            _ => {
                let op = ALU2[rng.below(ALU2.len() as u64) as usize];
                let a = src(&mut *rng);
                let b = src(&mut *rng);
                let _ = writeln!(out, "{op} {dst}, {a}, {b}");
            }
        }
    }
    let a = src(&mut *rng);
    let _ = writeln!(out, "halt {a}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_emit_programs_that_assemble() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..10 {
            clockhands::asm::assemble(&gen_clockhands(&mut rng, 20)).expect("clockhands");
            ch_baselines::straight::asm::assemble(&gen_straight(&mut rng, 20)).expect("straight");
            ch_baselines::riscv::asm::assemble(&gen_riscv(&mut rng, 20)).expect("riscv");
        }
    }
}
