//! Random well-formed Kern program generator.
//!
//! Programs are generated as a small structured model ([`KernProgram`])
//! and rendered to Kern source, so the shrinker can edit the *structure*
//! (drop a statement, zero a subexpression) rather than mangle text.
//!
//! Guarantees, by construction:
//!
//! * **Termination** — the only loop form is a counted `for` with a
//!   literal bound ≤ 8 and nesting depth ≤ 3, and helper `k` may only
//!   call helpers with index < `k` (no recursion).
//! * **Memory safety** — every array index is masked with `& (N - 1)`
//!   (`ARRAY_LEN` is a power of two), so generated stores can never
//!   clobber an ISA-specific stack frame and fake a divergence.
//! * **Total arithmetic** — division/remainder/shift are generated
//!   freely, *including* by zero and by amounts ≥ 64; those are exactly
//!   the edge cases the shared `AluOp::eval` semantics define and the
//!   differential harness must prove the three ISAs agree on.
//!
//! Boundary constants (0, ±1, 15/16, 63/64/65, 127/128, `i64` extremes)
//! are drawn preferentially so distance/shift/truncation boundaries in
//! the backends get hit often.

use proptest::TestRng;
use std::fmt::Write as _;

/// Length of the global scratch array (power of two; indices are masked).
pub const ARRAY_LEN: u64 = 16;

/// Binary operators the generator emits (all total in Kern).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (defined on zero divisors: RV64 semantics)
    Div,
    /// `%` (defined on zero divisors: RV64 semantics)
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<` (amount masked to 6 bits at execution)
    Shl,
    /// `>>` (arithmetic; amount masked to 6 bits at execution)
    Shr,
}

impl BinOp {
    const ALL: [BinOp; 10] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
    ];

    fn token(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        }
    }
}

/// An integer expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal (rendered overflow-safely; see `render_const`).
    Const(i64),
    /// Local variable `v{i}`.
    Var(usize),
    /// Helper parameter `p{i}` (meaningful only inside a helper body).
    Param(usize),
    /// Global scalar `g0`.
    Global,
    /// `buf[(e) & (ARRAY_LEN-1)]`.
    Arr(Box<Expr>),
    /// Innermost loop counter (renders as `0` outside any loop).
    LoopVar,
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `v{i} = e;`
    Assign(usize, Expr),
    /// `v{i} <op>= e;`
    Compound(usize, BinOp, Expr),
    /// `buf[(e1) & (ARRAY_LEN-1)] = e2;`
    ArrStore(Expr, Expr),
    /// `g0 = e;`
    GlobalSet(Expr),
    /// `if (cond != 0) { .. } else { .. }` (else may be empty).
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `for (var iN = 0; iN < count; iN += 1) { body }`, count in 1..=8.
    For(u8, Vec<Stmt>),
    /// `v{i} = h{k}(args);` — call helper `k` (must exist).
    Call(usize, usize, Vec<Expr>),
    /// `break;` inside a loop; renders as a no-op `{ }` outside one.
    Break,
}

/// A non-recursive helper function: `fn h{k}(p0: int, ..) -> int`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Helper {
    /// Number of `int` parameters (1..=2).
    pub params: usize,
    /// Body statements (may call helpers with smaller index only).
    pub body: Vec<Stmt>,
    /// The returned expression.
    pub ret: Expr,
}

/// A generated program: globals + helpers + `main` over `nvars` locals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernProgram {
    /// Helper functions; helper `k` may call only `h0..h{k-1}`.
    pub helpers: Vec<Helper>,
    /// Statements of `main` (before the checksum epilogue).
    pub main: Vec<Stmt>,
    /// Number of local int variables `v0..`.
    pub nvars: usize,
}

/// Boundary-heavy constant pool (distance, shift, and width boundaries).
const CONST_POOL: [i64; 22] = [
    0,
    1,
    2,
    -1,
    7,
    8,
    15,
    16,
    31,
    63,
    64,
    65,
    127,
    128,
    255,
    256,
    1023,
    -128,
    i64::MAX,
    i64::MIN,
    0x7fff_ffff,
    -0x8000_0000,
];

fn gen_const(rng: &mut TestRng) -> i64 {
    if rng.below(4) == 0 {
        // A quarter of constants are arbitrary small values.
        rng.below(201) as i64 - 100
    } else {
        CONST_POOL[rng.below(CONST_POOL.len() as u64) as usize]
    }
}

/// Context for expression generation: what names are in scope.
#[derive(Clone, Copy)]
struct Scope {
    nvars: usize,
    nparams: usize,
    in_loop: bool,
}

fn gen_expr(rng: &mut TestRng, sc: Scope, depth: u32) -> Expr {
    let leaf = depth == 0 || rng.below(3) == 0;
    if leaf {
        match rng.below(6) {
            0 | 1 => Expr::Const(gen_const(rng)),
            2 => Expr::Var(rng.below(sc.nvars as u64) as usize),
            3 if sc.nparams > 0 => Expr::Param(rng.below(sc.nparams as u64) as usize),
            3 => Expr::Var(rng.below(sc.nvars as u64) as usize),
            4 if sc.in_loop => Expr::LoopVar,
            4 => Expr::Global,
            _ => Expr::Arr(Box::new(Expr::Var(rng.below(sc.nvars as u64) as usize))),
        }
    } else {
        let op = BinOp::ALL[rng.below(BinOp::ALL.len() as u64) as usize];
        Expr::Bin(
            op,
            Box::new(gen_expr(rng, sc, depth - 1)),
            Box::new(gen_expr(rng, sc, depth - 1)),
        )
    }
}

fn gen_stmts(
    rng: &mut TestRng,
    sc: Scope,
    ncallable: usize,
    loop_depth: u32,
    budget: &mut u32,
) -> Vec<Stmt> {
    let n = 1 + rng.below(5) as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if *budget == 0 {
            break;
        }
        *budget -= 1;
        let v = rng.below(sc.nvars as u64) as usize;
        let choice = rng.below(12);
        let stmt = match choice {
            0..=3 => Stmt::Assign(v, gen_expr(rng, sc, 3)),
            4 | 5 => Stmt::Compound(
                v,
                BinOp::ALL[rng.below(BinOp::ALL.len() as u64) as usize],
                gen_expr(rng, sc, 2),
            ),
            6 => Stmt::ArrStore(gen_expr(rng, sc, 1), gen_expr(rng, sc, 2)),
            7 => Stmt::GlobalSet(gen_expr(rng, sc, 2)),
            8 => {
                let then_ = gen_stmts(rng, sc, ncallable, loop_depth, budget);
                let else_ = if rng.below(2) == 0 {
                    gen_stmts(rng, sc, ncallable, loop_depth, budget)
                } else {
                    Vec::new()
                };
                Stmt::If(gen_expr(rng, sc, 2), then_, else_)
            }
            9 if loop_depth < 3 => {
                let count = 1 + rng.below(8) as u8;
                let inner = Scope {
                    in_loop: true,
                    ..sc
                };
                let mut body = gen_stmts(rng, inner, ncallable, loop_depth + 1, budget);
                // A rare guarded break exercises early loop exit.
                if rng.below(6) == 0 {
                    body.push(Stmt::If(
                        gen_expr(rng, inner, 1),
                        vec![Stmt::Break],
                        Vec::new(),
                    ));
                }
                Stmt::For(count, body)
            }
            10 if ncallable > 0 => {
                let k = rng.below(ncallable as u64) as usize;
                Stmt::Call(v, k, Vec::new()) // arity filled in by caller
            }
            _ => Stmt::Assign(v, gen_expr(rng, sc, 2)),
        };
        out.push(stmt);
    }
    out
}

/// Fills in call argument lists to match each helper's arity.
fn fix_calls(stmts: &mut [Stmt], helpers: &[Helper], rng: &mut TestRng, sc: Scope) {
    for s in stmts {
        match s {
            Stmt::Call(_, k, args) => {
                let arity = helpers[*k].params;
                while args.len() < arity {
                    args.push(gen_expr(rng, sc, 1));
                }
            }
            Stmt::If(_, a, b) => {
                fix_calls(a, helpers, rng, sc);
                fix_calls(b, helpers, rng, sc);
            }
            Stmt::For(_, body) => fix_calls(body, helpers, rng, sc),
            _ => {}
        }
    }
}

/// Generates one random program.
pub fn gen_program(rng: &mut TestRng) -> KernProgram {
    let nvars = 2 + rng.below(4) as usize;
    let nhelpers = rng.below(3) as usize;
    let mut helpers: Vec<Helper> = Vec::with_capacity(nhelpers);
    for k in 0..nhelpers {
        let params = 1 + rng.below(2) as usize;
        let sc = Scope {
            nvars,
            nparams: params,
            in_loop: false,
        };
        // Helpers start at loop depth 2 (≤ 1 loop level): `main` can call
        // h2 → h1 → h0 from inside a triple loop, and each level may loop
        // ≤ 8 times, so the worst dynamic count stays ≈ 8³·8³·stmts — a
        // few million instructions, comfortably under the diff limit.
        let mut budget = 12;
        let mut body = gen_stmts(rng, sc, k, 2, &mut budget);
        fix_calls(&mut body, &helpers, rng, sc);
        let ret = gen_expr(rng, sc, 2);
        helpers.push(Helper { params, body, ret });
    }
    let sc = Scope {
        nvars,
        nparams: 0,
        in_loop: false,
    };
    let mut budget = 28;
    let mut main = gen_stmts(rng, sc, nhelpers, 0, &mut budget);
    fix_calls(&mut main, &helpers, rng, sc);
    KernProgram {
        helpers,
        main,
        nvars,
    }
}

/// Renders an `i64` literal without relying on the parser accepting
/// `i64::MIN` (whose absolute value does not fit in `i64`).
fn render_const(v: i64, out: &mut String) {
    if v == i64::MIN {
        out.push_str("(1 << 63)");
    } else if v < 0 {
        let _ = write!(out, "(0 - {})", v.unsigned_abs());
    } else {
        let _ = write!(out, "{v}");
    }
}

fn render_expr(e: &Expr, loop_var: Option<u32>, out: &mut String) {
    match e {
        Expr::Const(v) => render_const(*v, out),
        Expr::Var(i) => {
            let _ = write!(out, "v{i}");
        }
        Expr::Param(i) => {
            let _ = write!(out, "p{i}");
        }
        Expr::Global => out.push_str("g0"),
        Expr::Arr(idx) => {
            out.push_str("buf[(");
            render_expr(idx, loop_var, out);
            let _ = write!(out, ") & {}]", ARRAY_LEN - 1);
        }
        Expr::LoopVar => match loop_var {
            Some(n) => {
                let _ = write!(out, "i{n}");
            }
            None => out.push('0'),
        },
        Expr::Bin(op, a, b) => {
            out.push('(');
            render_expr(a, loop_var, out);
            let _ = write!(out, " {} ", op.token());
            render_expr(b, loop_var, out);
            out.push(')');
        }
    }
}

fn render_stmts(
    stmts: &[Stmt],
    loop_var: Option<u32>,
    next_loop: &mut u32,
    indent: usize,
    out: &mut String,
) {
    let pad = "    ".repeat(indent);
    for s in stmts {
        match s {
            Stmt::Assign(v, e) => {
                let _ = write!(out, "{pad}v{v} = ");
                render_expr(e, loop_var, out);
                out.push_str(";\n");
            }
            Stmt::Compound(v, op, e) => {
                let _ = write!(out, "{pad}v{v} {}= ", op.token());
                render_expr(e, loop_var, out);
                out.push_str(";\n");
            }
            Stmt::ArrStore(idx, e) => {
                let _ = write!(out, "{pad}buf[(");
                render_expr(idx, loop_var, out);
                let _ = write!(out, ") & {}] = ", ARRAY_LEN - 1);
                render_expr(e, loop_var, out);
                out.push_str(";\n");
            }
            Stmt::GlobalSet(e) => {
                let _ = write!(out, "{pad}g0 = ");
                render_expr(e, loop_var, out);
                out.push_str(";\n");
            }
            Stmt::If(cond, then_, else_) => {
                let _ = write!(out, "{pad}if ((");
                render_expr(cond, loop_var, out);
                out.push_str(") != 0) {\n");
                render_stmts(then_, loop_var, next_loop, indent + 1, out);
                if else_.is_empty() {
                    let _ = writeln!(out, "{pad}}}");
                } else {
                    let _ = writeln!(out, "{pad}}} else {{");
                    render_stmts(else_, loop_var, next_loop, indent + 1, out);
                    let _ = writeln!(out, "{pad}}}");
                }
            }
            Stmt::For(count, body) => {
                let n = *next_loop;
                *next_loop += 1;
                let _ = writeln!(
                    out,
                    "{pad}for (var i{n}: int = 0; i{n} < {count}; i{n} += 1) {{"
                );
                render_stmts(body, Some(n), next_loop, indent + 1, out);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::Call(v, k, args) => {
                let _ = write!(out, "{pad}v{v} = h{k}(");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    render_expr(a, loop_var, out);
                }
                out.push_str(");\n");
            }
            Stmt::Break => {
                if loop_var.is_some() {
                    let _ = writeln!(out, "{pad}break;");
                }
                // Outside a loop a break is rendered as nothing — the
                // shrinker may hoist statements out of loops, and the
                // rendered program must stay well-formed.
            }
        }
    }
}

/// Renders the program to compilable Kern source.
///
/// The epilogue folds every local, the global scalar, and the array into
/// one 32-bit-masked checksum so any state divergence reaches the exit
/// value.
pub fn render(p: &KernProgram) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("global g0: int;\n");
    let _ = writeln!(out, "global buf: int[{ARRAY_LEN}];");
    let mut next_loop = 0u32;
    for (k, h) in p.helpers.iter().enumerate() {
        let _ = write!(out, "fn h{k}(");
        for i in 0..h.params {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "p{i}: int");
        }
        out.push_str(") -> int {\n");
        // Helpers get their own locals so bodies can reference v*.
        for v in 0..p.nvars {
            let _ = writeln!(out, "    var v{v}: int = {};", v + 1);
        }
        render_stmts(&h.body, None, &mut next_loop, 1, &mut out);
        out.push_str("    return ");
        render_expr(&h.ret, None, &mut out);
        out.push_str(";\n}\n");
    }
    out.push_str("fn main() -> int {\n");
    for v in 0..p.nvars {
        let _ = writeln!(out, "    var v{v}: int = {};", (v as i64 + 1) * 3);
    }
    render_stmts(&p.main, None, &mut next_loop, 1, &mut out);
    // Checksum epilogue: mix everything observable into the exit value.
    out.push_str("    var chk: int = 0;\n");
    for v in 0..p.nvars {
        let _ = writeln!(out, "    chk = ((chk * 31) + v{v}) ^ (chk >> 7);");
    }
    out.push_str("    chk = (chk * 31) + g0;\n");
    let n = next_loop;
    let _ = writeln!(
        out,
        "    for (var i{n}: int = 0; i{n} < {ARRAY_LEN}; i{n} += 1) {{ chk = ((chk * 31) + buf[i{n}]) ^ (chk >> 7); }}"
    );
    out.push_str("    return chk & 0xffffffff;\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_render_and_are_deterministic() {
        let mut r1 = TestRng::from_seed(42);
        let mut r2 = TestRng::from_seed(42);
        for _ in 0..20 {
            let p1 = gen_program(&mut r1);
            let p2 = gen_program(&mut r2);
            assert_eq!(p1, p2, "same seed, same program");
            let src = render(&p1);
            assert!(src.contains("fn main() -> int"));
        }
    }

    #[test]
    fn min_constant_renders_without_literal_overflow() {
        let mut s = String::new();
        render_const(i64::MIN, &mut s);
        assert_eq!(s, "(1 << 63)");
        s.clear();
        render_const(-5, &mut s);
        assert_eq!(s, "(0 - 5)");
    }
}
