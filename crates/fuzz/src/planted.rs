//! Planted-mutation mode: measures the static verifier's catch rate.
//!
//! The question `ch-verify` exists to answer is "would a backend bug
//! that corrupts one source-operand *distance* get past us?". This
//! module answers it empirically: compile a random Kern program, plant
//! exactly one distance corruption in the Clockhands or STRAIGHT
//! output (the two distance-addressed ISAs), and check who notices:
//!
//! 1. **static** — the verifier reports an error on the mutated
//!    program (the result we want: caught before anything runs);
//! 2. **dynamic** — the verifier stays silent but the interpreter
//!    rejects the program, diverges from the unmutated run's exit
//!    checksum, or fails to halt within the budget;
//! 3. **missed** — neither notices.
//!
//! Two corruption models are measured (see [`Model`]):
//!
//! * [`Model::Escape`] — the corrupted distance displaces the operand
//!   beyond its function's local definition region, which is the
//!   signature of every backend distance bug the differential fuzzer
//!   has found (a miscounted write shifts the operand across a call,
//!   join, or function boundary). This is the class the verifier
//!   guarantees to catch, and the class the CI gate asserts ≥95% on.
//! * [`Model::Uniform`] — the corrupted distance is uniform over the
//!   operand's full encodable range. Corruptions that land on another
//!   *initialized in-window* definition swap one well-defined value
//!   for another; no sound static analysis can reject such a program
//!   (it is a valid program computing something else), so this model's
//!   static rate is reported for transparency but not gated.
//!
//! [`planted_batch`] is deterministic in its seed; `ch-fuzz --planted`
//! runs both models at CI scale and fails if the escape-model static
//! catch rate drops below 95%.

use ch_baselines::straight::{StInst, StSrc};
use ch_verify::Options;
use clockhands::hand::Hand;
use clockhands::inst::{Inst, Src};
use proptest::TestRng;

/// How planted corruptions are drawn. See the module docs for the
/// rationale behind the two models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Window-escaping corruptions (the backend-bug signature): the new
    /// distance reaches past every definition the function itself made
    /// before the corrupted instruction, so on at least one path the
    /// operand resolves to caller leftovers, a callee-saved slot, or
    /// uninitialized state.
    Escape,
    /// Uniform corruptions over the operand's full encodable range.
    Uniform,
}

/// Aggregate result of a planted-mutation batch.
#[derive(Debug, Clone, Default)]
pub struct PlantedStats {
    /// Cases attempted.
    pub cases: u32,
    /// Cases with no usable baseline (original run exceeded the budget)
    /// or no eligible operand to corrupt. Not counted against the rate.
    pub skipped: u32,
    /// Mutations actually planted (`cases - skipped`).
    pub planted: u32,
    /// Corruptions the static verifier flagged before execution.
    pub caught_static: u32,
    /// Corruptions only execution exposed (divergence, rejection, or a
    /// blown instruction budget).
    pub caught_dynamic: u32,
    /// Corruptions invisible to both (semantically equivalent reads or
    /// swaps of two initialized values that cancel in the checksum).
    pub missed: u32,
    /// Human-readable descriptions of the first few non-static cases.
    pub escapes: Vec<String>,
}

impl PlantedStats {
    /// Fraction of planted corruptions the verifier caught statically.
    pub fn static_rate(&self) -> f64 {
        if self.planted == 0 {
            return 1.0;
        }
        f64::from(self.caught_static) / f64::from(self.planted)
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "planted {} corruption(s): {} caught statically ({:.1}%), \
             {} dynamically, {} missed, {} skipped",
            self.planted,
            self.caught_static,
            100.0 * self.static_rate(),
            self.caught_dynamic,
            self.missed,
            self.skipped,
        )
    }
}

/// The mutable distance-operand slots of one Clockhands instruction.
fn ch_slots(inst: &mut Inst) -> Vec<&mut Src> {
    let all: Vec<&mut Src> = match inst {
        Inst::Alu { src1, src2, .. } | Inst::Branch { src1, src2, .. } => vec![src1, src2],
        Inst::AluImm { src1, .. } => vec![src1],
        Inst::Load { base, .. } => vec![base],
        Inst::Store { value, base, .. } => vec![value, base],
        Inst::JumpReg { src }
        | Inst::CallReg { src, .. }
        | Inst::Mv { src, .. }
        | Inst::Halt { src } => vec![src],
        Inst::Li { .. } | Inst::Jump { .. } | Inst::Call { .. } | Inst::Nop => vec![],
    };
    all.into_iter()
        .filter(|s| matches!(s, Src::Hand(..)))
        .collect()
}

/// The hand a Clockhands instruction writes, if any.
fn ch_writes(inst: &Inst) -> Option<Hand> {
    match *inst {
        Inst::Alu { dst, .. }
        | Inst::AluImm { dst, .. }
        | Inst::Li { dst, .. }
        | Inst::Load { dst, .. }
        | Inst::Mv { dst, .. }
        | Inst::Call { dst, .. }
        | Inst::CallReg { dst, .. } => Some(dst),
        _ => None,
    }
}

/// The mutable distance-operand slots of one STRAIGHT instruction.
fn st_slots(inst: &mut StInst) -> Vec<&mut StSrc> {
    let all: Vec<&mut StSrc> = match inst {
        StInst::Alu { src1, src2, .. } | StInst::Branch { src1, src2, .. } => vec![src1, src2],
        StInst::AluImm { src1, .. } => vec![src1],
        StInst::Load { base, .. } => vec![base],
        StInst::Store { value, base, .. } => vec![value, base],
        StInst::JumpReg { src } | StInst::Mv { src } | StInst::Halt { src } => vec![src],
        StInst::Li { .. }
        | StInst::Jump { .. }
        | StInst::Call { .. }
        | StInst::SpAddi { .. }
        | StInst::Nop => vec![],
    };
    all.into_iter()
        .filter(|s| matches!(s, StSrc::Dist(_)))
        .collect()
}

/// Function layout roots: the machine entry plus every direct call
/// target, sorted. The function containing instruction `i` is taken to
/// start at the greatest root ≤ `i` — compiled output lays functions
/// out contiguously, and any misattribution only *overcounts* local
/// writes, which keeps the escape sampler conservative.
fn roots(entry: u32, call_targets: impl Iterator<Item = u32>) -> Vec<u32> {
    let mut r: Vec<u32> = std::iter::once(entry).chain(call_targets).collect();
    r.sort_unstable();
    r.dedup();
    r
}

/// `(root, is_machine_entry)` for the function containing `i`.
fn containing(roots: &[u32], entry: u32, i: u32) -> (u32, bool) {
    let root = roots.iter().copied().rfind(|&r| r <= i).unwrap_or(0);
    (root, root == entry)
}

/// How one planted case ended.
enum CaseOutcome {
    Skipped,
    CaughtStatic,
    CaughtDynamic(String),
    Missed(String),
}

/// One eligible corruption: instruction index, operand slot index, and
/// the corrupted distance to write there.
struct Corruption {
    at: usize,
    slot: usize,
    nd: u8,
}

/// Draws one corruption of the Clockhands program under `model`.
fn draw_clockhands(
    rng: &mut TestRng,
    prog: &mut clockhands::program::Program,
    covered: &[bool],
    model: Model,
) -> Option<Corruption> {
    use clockhands::hand::MAX_DISTANCE;
    let funcs = roots(
        prog.entry,
        prog.insts.iter().filter_map(|inst| match *inst {
            Inst::Call { target, .. } => Some(target),
            _ => None,
        }),
    );
    // All (site, slot, eligible-distance-count) triples under the model.
    let mut sites: Vec<(usize, usize, u8, u8)> = Vec::new(); // (at, slot, lo, hi)
    for (at, &cov) in covered.iter().enumerate() {
        if !cov {
            continue;
        }
        let (root, is_main) = containing(&funcs, prog.entry, at as u32);
        let mut tmp = prog.insts[at];
        for (slot, src) in ch_slots(&mut tmp).into_iter().enumerate() {
            let Src::Hand(hand, _) = *src else { continue };
            let limit = if hand == Hand::S {
                MAX_DISTANCE - 1
            } else {
                MAX_DISTANCE
            };
            let lo = match model {
                Model::Uniform => 0,
                Model::Escape => {
                    // Caller-visible `s` slots (return address, args) are
                    // legal to read in a called function, so an escaping
                    // `s` read is only provably wrong at machine entry.
                    if hand == Hand::S && !is_main {
                        continue;
                    }
                    let writes = (root as usize..at)
                        .filter(|&j| ch_writes(&prog.insts[j]) == Some(hand))
                        .count();
                    if writes >= usize::from(limit) {
                        continue;
                    }
                    writes as u8 + 1
                }
            };
            if lo < limit {
                sites.push((at, slot, lo, limit));
            }
        }
    }
    if sites.is_empty() {
        return None;
    }
    let (at, slot, lo, hi) = sites[rng.below(sites.len() as u64) as usize];
    let Src::Hand(_, d) = *ch_slots(&mut prog.insts[at])[slot] else {
        unreachable!("ch_slots only yields Hand operands");
    };
    // A uniformly random distance in [lo, hi) different from d.
    let mut nd = lo + rng.below(u64::from(hi - lo)) as u8;
    if nd == d {
        nd = if nd + 1 < hi { nd + 1 } else { lo };
        if nd == d {
            return None; // the eligible range is exactly {d}
        }
    }
    Some(Corruption { at, slot, nd })
}

/// Draws one corruption of the STRAIGHT program under `model`.
fn draw_straight(
    rng: &mut TestRng,
    prog: &mut ch_baselines::straight::StProgram,
    covered: &[bool],
    model: Model,
) -> Option<Corruption> {
    use ch_baselines::straight::MAX_DISTANCE;
    // Depth of the caller-visible entry region a called function may
    // legally read (return address + argument slots); reads past it hit
    // caller leftovers. Mirrors the backend's argument convention.
    const ARG_DEPTH: u32 = 12;
    let funcs = roots(
        prog.entry,
        prog.insts.iter().filter_map(|inst| match *inst {
            StInst::Call { target } => Some(target),
            _ => None,
        }),
    );
    let mut sites: Vec<(usize, usize, u8, u8)> = Vec::new();
    for (at, &cov) in covered.iter().enumerate() {
        if !cov {
            continue;
        }
        let (root, is_main) = containing(&funcs, prog.entry, at as u32);
        let local = at as u32 - root; // every instruction fills one slot
        let lo = match model {
            Model::Uniform => 1,
            Model::Escape => {
                let margin = if is_main { 0 } else { ARG_DEPTH };
                let lo = local + margin + 1;
                if lo >= u32::from(MAX_DISTANCE) {
                    continue;
                }
                lo as u8
            }
        };
        for (slot, _) in st_slots(&mut prog.insts[at]).into_iter().enumerate() {
            sites.push((at, slot, lo, MAX_DISTANCE));
        }
    }
    if sites.is_empty() {
        return None;
    }
    let (at, slot, lo, hi) = sites[rng.below(sites.len() as u64) as usize];
    let StSrc::Dist(d) = *st_slots(&mut prog.insts[at])[slot] else {
        unreachable!("st_slots only yields Dist operands");
    };
    let mut nd = lo + rng.below(u64::from(hi - lo) + 1) as u8;
    if nd == d {
        nd = if nd < hi { nd + 1 } else { lo };
        if nd == d {
            return None;
        }
    }
    Some(Corruption { at, slot, nd })
}

/// Plants one distance corruption in the Clockhands output and
/// classifies who catches it.
fn plant_clockhands(
    rng: &mut TestRng,
    set: &ch_compiler::CompiledSet,
    limit: u64,
    model: Model,
) -> CaseOutcome {
    use clockhands::interp::Interpreter;

    let base = match Interpreter::new(set.clockhands.clone()) {
        Ok(mut cpu) => match cpu.run(limit) {
            Ok(r) => r.exit_value,
            Err(_) => return CaseOutcome::Skipped,
        },
        Err(_) => return CaseOutcome::Skipped,
    };

    // Corruptions in statically dead code are inconsequential by
    // construction (W-UNREACH already reports the dead code itself), so
    // only analyzed instructions are candidate sites.
    let baseline = ch_verify::verify_clockhands(&set.clockhands, &Options::default());
    if !baseline.is_clean() {
        return CaseOutcome::Skipped;
    }
    let mut prog = set.clockhands.clone();
    let Some(c) = draw_clockhands(rng, &mut prog, &baseline.covered, model) else {
        return CaseOutcome::Skipped;
    };
    let slot = ch_slots(&mut prog.insts[c.at])
        .into_iter()
        .nth(c.slot)
        .unwrap();
    let Src::Hand(hand, d) = *slot else {
        unreachable!("ch_slots only yields Hand operands");
    };
    *slot = Src::Hand(hand, c.nd);
    let what = format!(
        "clockhands inst {}: {hand:?}[{d}] -> {hand:?}[{}]",
        c.at, c.nd
    );

    if !ch_verify::verify_clockhands(&prog, &Options::default()).is_clean() {
        return CaseOutcome::CaughtStatic;
    }
    match Interpreter::new(prog) {
        Err(_) => CaseOutcome::CaughtDynamic(what),
        Ok(mut cpu) => match cpu.run(limit) {
            Err(_) => CaseOutcome::CaughtDynamic(what),
            Ok(r) if r.exit_value != base => CaseOutcome::CaughtDynamic(what),
            Ok(_) => CaseOutcome::Missed(what),
        },
    }
}

/// Plants one distance corruption in the STRAIGHT output and classifies
/// who catches it.
fn plant_straight(
    rng: &mut TestRng,
    set: &ch_compiler::CompiledSet,
    limit: u64,
    model: Model,
) -> CaseOutcome {
    use ch_baselines::straight::interp::Interpreter;

    let base = match Interpreter::new(set.straight.clone()) {
        Ok(mut cpu) => match cpu.run(limit) {
            Ok(r) => r.exit_value,
            Err(_) => return CaseOutcome::Skipped,
        },
        Err(_) => return CaseOutcome::Skipped,
    };

    let baseline = ch_verify::verify_straight(&set.straight, &Options::default());
    if !baseline.is_clean() {
        return CaseOutcome::Skipped;
    }
    let mut prog = set.straight.clone();
    let Some(c) = draw_straight(rng, &mut prog, &baseline.covered, model) else {
        return CaseOutcome::Skipped;
    };
    let slot = st_slots(&mut prog.insts[c.at])
        .into_iter()
        .nth(c.slot)
        .unwrap();
    let StSrc::Dist(d) = *slot else {
        unreachable!("st_slots only yields Dist operands");
    };
    *slot = StSrc::Dist(c.nd);
    let what = format!("straight inst {}: [{d}] -> [{}]", c.at, c.nd);

    if !ch_verify::verify_straight(&prog, &Options::default()).is_clean() {
        return CaseOutcome::CaughtStatic;
    }
    match Interpreter::new(prog) {
        Err(_) => CaseOutcome::CaughtDynamic(what),
        Ok(mut cpu) => match cpu.run(limit) {
            Err(_) => CaseOutcome::CaughtDynamic(what),
            Ok(r) if r.exit_value != base => CaseOutcome::CaughtDynamic(what),
            Ok(_) => CaseOutcome::Missed(what),
        },
    }
}

/// Runs `cases` planted-mutation cases under `model`, alternating
/// between the Clockhands and STRAIGHT outputs of freshly generated
/// programs.
///
/// Deterministic in `seed`. `limit` is the per-run instruction budget
/// (runs that exceed it on the *unmutated* program are skipped, since
/// they provide no baseline to diverge from).
pub fn planted_batch(seed: u64, cases: u32, limit: u64, model: Model) -> PlantedStats {
    let mut rng = TestRng::from_seed(seed ^ 0x51ed_ca5e);
    let mut stats = PlantedStats {
        cases,
        ..Default::default()
    };
    for i in 0..cases {
        let program = crate::gen::gen_program(&mut rng);
        let src = crate::gen::render(&program);
        let set = match ch_compiler::compile(&src) {
            Ok(set) => set,
            Err(_) => {
                stats.skipped += 1;
                continue;
            }
        };
        let outcome = if i % 2 == 0 {
            plant_clockhands(&mut rng, &set, limit, model)
        } else {
            plant_straight(&mut rng, &set, limit, model)
        };
        match outcome {
            CaseOutcome::Skipped => stats.skipped += 1,
            CaseOutcome::CaughtStatic => {
                stats.planted += 1;
                stats.caught_static += 1;
            }
            CaseOutcome::CaughtDynamic(what) => {
                stats.planted += 1;
                stats.caught_dynamic += 1;
                if stats.escapes.len() < 8 {
                    stats.escapes.push(format!("case {i} (dynamic): {what}"));
                }
            }
            CaseOutcome::Missed(what) => {
                stats.planted += 1;
                stats.missed += 1;
                if stats.escapes.len() < 8 {
                    stats.escapes.push(format!("case {i} (MISSED): {what}"));
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_corruptions_are_overwhelmingly_caught_statically() {
        let stats = planted_batch(0xC10C, 60, crate::DEFAULT_LIMIT, Model::Escape);
        assert!(
            stats.planted >= 40,
            "too many skips to judge: {}",
            stats.summary()
        );
        assert!(
            stats.static_rate() >= 0.95,
            "static catch rate below target: {}\n{}",
            stats.summary(),
            stats.escapes.join("\n")
        );
    }

    #[test]
    fn uniform_corruptions_are_mostly_caught_somehow() {
        // The uniform model includes in-window value swaps no sound
        // static analysis can reject; assert the combined static +
        // dynamic harness still catches a solid majority.
        let stats = planted_batch(0xC10C, 40, crate::DEFAULT_LIMIT, Model::Uniform);
        assert!(stats.planted >= 30, "{}", stats.summary());
        let caught = stats.caught_static + stats.caught_dynamic;
        assert!(
            f64::from(caught) >= 0.5 * f64::from(stats.planted),
            "{}",
            stats.summary()
        );
    }
}
