//! The differential executor: one Kern source, three ISAs, one answer.
//!
//! For a given source the executor
//!
//! 1. compiles through all three backends,
//! 2. runs the three functional interpreters to completion,
//! 3. asserts the three exit checksums are identical,
//! 4. asserts the bytes of every *global* (same addresses in all three
//!    backends, from the shared IR) are identical — stack layouts are
//!    ISA-specific and legitimately differ, so only globals compare,
//! 5. feeds each interpreter's committed trace to the timing simulator
//!    and asserts the simulator retires exactly that stream, in order,
//!    at nondecreasing cycles ([`ch_sim::CommitLog`]).
//!
//! Any violation comes back as a [`HarnessError`] naming the ISA and
//! stage; [`crate::shrink()`] minimizes the offending source.

use ch_common::config::{MachineConfig, WidthClass};
use ch_common::error::{HarnessError, Stage};
use ch_common::inst::DynInst;
use ch_common::IsaKind;
use ch_compiler::{build_ir, compile};
use ch_sim::{CommitLog, Simulator};

/// Result of one clean differential run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffOutcome {
    /// The agreed exit checksum.
    pub exit_value: u64,
    /// Committed instruction counts per ISA, in `IsaKind::ALL` order.
    pub committed: [u64; 3],
}

/// Why a case was skipped rather than judged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Skip {
    /// At least one interpreter hit the step budget; the case proves
    /// nothing either way (counts differ per ISA by design).
    LimitReached(IsaKind),
}

/// Outcome of [`run_differential`]: a judgement or an explicit skip.
pub type DiffResult = Result<Result<DiffOutcome, Skip>, HarnessError>;

fn isa_tag(isa: IsaKind) -> &'static str {
    match isa {
        IsaKind::Riscv => "riscv",
        IsaKind::Straight => "straight",
        IsaKind::Clockhands => "clockhands",
    }
}

struct IsaRun {
    trace: Vec<DynInst>,
    exit_value: u64,
    committed: u64,
    globals: Vec<u8>,
}

/// Runs `src` through the full differential pipeline.
///
/// `ctx` names the case in errors (e.g. `"fuzz case 17"`); `limit` is
/// the per-ISA instruction budget.
///
/// The outer `Result` is the judgement (compile/execute/mismatch
/// failures); the inner one distinguishes a clean agreement from an
/// explicit [`Skip`].
pub fn run_differential(ctx: &str, src: &str, limit: u64) -> DiffResult {
    // The shared IR fixes every global's address for all three backends;
    // those ranges are the memory-effect observables.
    let module =
        build_ir(src).map_err(|e| HarnessError::new(ctx, Stage::Compile, e.to_string()))?;
    let global_ranges: Vec<(u64, u64)> = module.globals.iter().map(|g| (g.addr, g.size)).collect();
    let set = compile(src).map_err(|e| HarnessError::new(ctx, Stage::Compile, e.to_string()))?;
    // Static reach oracle: the STRAIGHT backend's relay-mv placement must
    // leave every distance encodable before we even execute.
    crate::oracle::check_straight_reach(&set.straight)
        .map_err(|e| HarnessError::new(ctx, Stage::Validate, e).on_isa("straight"))?;
    // Verifier-clean oracle: every compiled program must pass the
    // path-sensitive dataflow verifier before the interpreters run, so a
    // backend bug that happens to execute benignly still fails the case.
    verify_set(ctx, &set)?;

    let mut runs: Vec<IsaRun> = Vec::with_capacity(3);
    for isa in IsaKind::ALL {
        let fail =
            |stage, detail: String| HarnessError::new(ctx, stage, detail).on_isa(isa_tag(isa));
        let run = match isa {
            IsaKind::Riscv => {
                let mut cpu = ch_baselines::riscv::interp::Interpreter::new(set.riscv.clone())
                    .map_err(|e| fail(Stage::Validate, e.to_string()))?;
                match cpu.trace(limit) {
                    Ok((trace, r)) => IsaRun {
                        trace,
                        exit_value: r.exit_value,
                        committed: r.committed,
                        globals: read_globals(cpu.mem(), &global_ranges),
                    },
                    Err(ch_baselines::riscv::interp::RvError::LimitReached) => {
                        return Ok(Err(Skip::LimitReached(isa)))
                    }
                    Err(e) => return Err(fail(Stage::Execute, e.to_string())),
                }
            }
            IsaKind::Straight => {
                let mut cpu =
                    ch_baselines::straight::interp::Interpreter::new(set.straight.clone())
                        .map_err(|e| fail(Stage::Validate, e.to_string()))?;
                match cpu.trace(limit) {
                    Ok((trace, r)) => IsaRun {
                        trace,
                        exit_value: r.exit_value,
                        committed: r.committed,
                        globals: read_globals(cpu.mem(), &global_ranges),
                    },
                    Err(ch_baselines::straight::interp::StError::LimitReached) => {
                        return Ok(Err(Skip::LimitReached(isa)))
                    }
                    Err(e) => return Err(fail(Stage::Execute, e.to_string())),
                }
            }
            IsaKind::Clockhands => {
                let mut cpu = clockhands::interp::Interpreter::new(set.clockhands.clone())
                    .map_err(|e| fail(Stage::Validate, e.to_string()))?;
                match cpu.trace(limit) {
                    Ok((trace, r)) => IsaRun {
                        trace,
                        exit_value: r.exit_value,
                        committed: r.committed,
                        globals: read_globals(cpu.mem(), &global_ranges),
                    },
                    Err(clockhands::interp::InterpError::LimitReached) => {
                        return Ok(Err(Skip::LimitReached(isa)))
                    }
                    Err(e) => return Err(fail(Stage::Execute, e.to_string())),
                }
            }
        };
        runs.push(run);
    }

    // Interpreter-vs-interpreter: exit checksums and global memory.
    let base = &runs[0];
    for (i, isa) in IsaKind::ALL.iter().enumerate().skip(1) {
        if runs[i].exit_value != base.exit_value {
            return Err(HarnessError::new(
                ctx,
                Stage::Mismatch,
                format!(
                    "exit checksum {:#x} != riscv {:#x}",
                    runs[i].exit_value, base.exit_value
                ),
            )
            .on_isa(isa_tag(*isa)));
        }
        if runs[i].globals != base.globals {
            let at = runs[i]
                .globals
                .iter()
                .zip(&base.globals)
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            return Err(HarnessError::new(
                ctx,
                Stage::Mismatch,
                format!("global memory differs from riscv at byte offset {at}"),
            )
            .on_isa(isa_tag(*isa)));
        }
    }

    // Interpreter-vs-simulator: the timing model must retire exactly the
    // interpreter's committed stream, in order.
    for (i, isa) in IsaKind::ALL.iter().enumerate() {
        let cfg = MachineConfig::preset(WidthClass::W8, *isa);
        let mut sim = Simulator::with_tracer(cfg, CommitLog::new());
        let counters = sim.run(runs[i].trace.iter().cloned());
        let log = sim.into_tracer();
        let fail =
            |detail: String| HarnessError::new(ctx, Stage::Mismatch, detail).on_isa(isa_tag(*isa));
        if counters.committed != runs[i].trace.len() as u64 {
            return Err(fail(format!(
                "simulator committed {} of {} trace instructions",
                counters.committed,
                runs[i].trace.len()
            )));
        }
        if log.entries().len() as u64 != counters.committed {
            return Err(fail(format!(
                "commit log has {} entries for {} commits",
                log.entries().len(),
                counters.committed
            )));
        }
        if !log.is_in_commit_order() {
            return Err(fail("commit stream out of order".to_string()));
        }
        for (entry, inst) in log.entries().iter().zip(&runs[i].trace) {
            if entry.seq != inst.seq || entry.pc != inst.pc {
                return Err(fail(format!(
                    "commit stream diverges at seq {} (pc {:#x}): trace seq {} (pc {:#x})",
                    entry.seq, entry.pc, inst.seq, inst.pc
                )));
            }
        }
    }

    Ok(Ok(DiffOutcome {
        exit_value: base.exit_value,
        committed: [runs[0].committed, runs[1].committed, runs[2].committed],
    }))
}

/// Runs `ch-verify` over all three programs of a compiled set, mapping
/// the first unclean report to a [`Stage::Validate`] harness error on
/// the offending ISA. Lints are allowed; errors are fatal.
fn verify_set(ctx: &str, set: &ch_compiler::CompiledSet) -> Result<(), HarnessError> {
    match ch_compiler::verify_set(set) {
        Ok(()) => Ok(()),
        Err(ch_compiler::CompileError::Verify { isa, detail }) => {
            Err(HarnessError::new(ctx, Stage::Validate, detail).on_isa(isa))
        }
        Err(e) => Err(HarnessError::new(ctx, Stage::Validate, e.to_string())),
    }
}

fn read_globals(mem: &ch_common::Memory, ranges: &[(u64, u64)]) -> Vec<u8> {
    let mut out = Vec::new();
    for &(addr, size) in ranges {
        out.extend(mem.read_bytes(addr, size as usize));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_case_agrees() {
        let src = "global g0: int;
            fn main() -> int {
                var a: int = 100;
                var b: int = 0;
                g0 = (a / b) + (a % b) + (1 << 65) + ((0 - 1) >> 63);
                return g0 & 0xffffffff;
            }";
        let out = run_differential("directed", src, 1_000_000)
            .expect("no divergence")
            .expect("no skip");
        // a/0 = -1, a%0 = 100, 1<<65 = 2, -1>>63 = -1 → 100 + 2 - 2 = 100.
        assert_eq!(out.exit_value, 100);
    }

    #[test]
    fn limit_exhaustion_is_a_skip_not_a_failure() {
        let src = "fn main() -> int {
                var s: int = 0;
                for (var i: int = 0; i < 10000; i += 1) { s += i; }
                return s & 0xffffffff;
            }";
        match run_differential("skip", src, 100) {
            Ok(Err(Skip::LimitReached(_))) => {}
            other => panic!("expected skip, got {other:?}"),
        }
    }
}
