//! Invariant oracles for the per-ISA register machinery the paper
//! singles out (§5.1): Clockhands RP wrap-around and distance
//! saturation, STRAIGHT reach/relay limits, and the RISC renamer's
//! free-list conservation and checkpoint recovery.
//!
//! Each oracle drives the real implementation with a random operation
//! sequence while maintaining an independent, trivially-correct model,
//! and returns `Err(description)` on the first disagreement.

use ch_baselines::riscv::rename::Renamer;
use ch_baselines::straight::MAX_DISTANCE as ST_MAX_DISTANCE;
use clockhands::hand::{MAX_DISTANCE, NUM_HANDS};
use clockhands::rp::RingFile;
use proptest::TestRng;

/// Hand quotas used by the oracles (the simulator's W8 Clockhands
/// preset: generous enough that `can_alloc` is exercised near wrap).
pub const QUOTAS: [u32; NUM_HANDS] = [64, 48, 32, 24];

/// Random-walk oracle for [`RingFile`]: RP wrap-around at hand-quota
/// boundaries, distance resolution against a shadow model, and
/// snapshot/restore round-trips.
pub fn check_ring_file(rng: &mut TestRng, steps: u32) -> Result<(), String> {
    let mut rf = RingFile::new(&QUOTAS, MAX_DISTANCE as u32);
    // Shadow model: per-ring list of every physical number handed out.
    let mut model: Vec<Vec<u32>> = vec![Vec::new(); NUM_HANDS];
    let bases: Vec<u32> = QUOTAS
        .iter()
        .scan(0u32, |acc, q| {
            let b = *acc;
            *acc += q;
            Some(b)
        })
        .collect();
    let mut snaps: Vec<(clockhands::rp::RpSnapshot, Vec<u64>)> = Vec::new();

    for step in 0..steps {
        let g = rng.below(NUM_HANDS as u64) as usize;
        match rng.below(10) {
            // Mostly allocate: drives every ring through many wraps.
            0..=5 => {
                let expect = bases[g] + (rf.writes(g) % QUOTAS[g] as u64) as u32;
                let p = rf.alloc(g);
                if p != expect {
                    return Err(format!(
                        "step {step}: ring {g} alloc gave phys {p}, model says {expect} \
                         (writes {}, quota {})",
                        rf.writes(g),
                        QUOTAS[g]
                    ));
                }
                model[g].push(p);
            }
            // Resolve a random encodable distance and compare with the
            // shadow history (saturation: only d < MAX_DISTANCE legal).
            6..=7 => {
                let w = rf.writes(g);
                if w == 0 {
                    continue;
                }
                let max_d = (MAX_DISTANCE as u64).min(w);
                let d = rng.below(max_d) as u32;
                let p = rf.src_phys(g, d);
                let expect = model[g][model[g].len() - 1 - d as usize];
                if p != expect {
                    return Err(format!(
                        "step {step}: ring {g} src_phys({d}) = {p}, model says {expect}"
                    ));
                }
            }
            8 => {
                let writes: Vec<u64> = (0..NUM_HANDS).map(|g| rf.writes(g)).collect();
                snaps.push((rf.snapshot(), writes));
            }
            _ => {
                if let Some((snap, writes)) = snaps.pop() {
                    rf.restore(&snap);
                    for (g, &w) in writes.iter().enumerate() {
                        if rf.writes(g) != w {
                            return Err(format!(
                                "step {step}: restore left ring {g} at {} writes, \
                                 snapshot had {w}",
                                rf.writes(g)
                            ));
                        }
                        model[g].truncate(w as usize);
                    }
                }
            }
        }
    }

    // Wrap-around at the quota boundary, explicitly: quota more allocs
    // revisit exactly the same physical registers in the same order.
    for (g, &quota) in QUOTAS.iter().enumerate() {
        let first: Vec<u32> = (0..quota).map(|_| rf.alloc(g)).collect();
        let second: Vec<u32> = (0..quota).map(|_| rf.alloc(g)).collect();
        if first != second {
            return Err(format!(
                "ring {g}: allocation did not wrap at quota {quota}"
            ));
        }
    }
    Ok(())
}

/// `can_alloc` must refuse exactly when a wrap would overwrite a slot
/// within `MAX_DISTANCE` of the oldest in-flight RP.
pub fn check_ring_file_stall_rule(rng: &mut TestRng, trials: u32) -> Result<(), String> {
    for t in 0..trials {
        let mut rf = RingFile::new(&QUOTAS, MAX_DISTANCE as u32);
        let g = rng.below(NUM_HANDS as u64) as usize;
        let oldest = rf.snapshot();
        let quota = QUOTAS[g] as u64;
        let inflight = rng.below(quota + 4);
        for _ in 0..inflight {
            rf.alloc(g);
        }
        let expect = inflight + (MAX_DISTANCE as u64) < quota;
        let got = rf.can_alloc(g, &oldest);
        if got != expect {
            return Err(format!(
                "trial {t}: ring {g} inflight {inflight} quota {quota}: \
                 can_alloc = {got}, paper rule says {expect}"
            ));
        }
    }
    Ok(())
}

/// STRAIGHT reach oracle: every source distance in a compiled program is
/// within `1..=127`, i.e. the backend's relay-mv placement made every
/// operand reachable. (`validate()` is the implementation under test;
/// the explicit re-scan keeps it honest.)
pub fn check_straight_reach(prog: &ch_baselines::straight::StProgram) -> Result<(), String> {
    prog.validate().map_err(|e| format!("validate: {e}"))?;
    for (i, inst) in prog.insts.iter().enumerate() {
        for src in inst.srcs() {
            if let ch_baselines::straight::StSrc::Dist(d) = src {
                if d == 0 || d > ST_MAX_DISTANCE {
                    return Err(format!("inst {i}: source distance {d} out of 1..=127"));
                }
            }
        }
    }
    Ok(())
}

/// Renamer oracle: free-list conservation and checkpoint recovery.
///
/// Models the machine around the renamer: every rename with a
/// destination moves one register free-list → RMT and one RMT →
/// "in flight, pending release" (the overwritten mapping, freed at
/// commit). A checkpoint restore rolls the RMT back and the model
/// releases the squashed allocations, exactly as
/// [`Renamer::restore`]'s contract requires. At every step, physical
/// registers are conserved:
/// `free + mapped (64) + in-flight prevs == phys_regs`.
pub fn check_renamer(rng: &mut TestRng, steps: u32) -> Result<(), String> {
    const PHYS: u32 = 128;
    const LOGICALS: u64 = 64;
    let mut rn = Renamer::new(PHYS);
    // Renames since the last commit point: (allocated dst, displaced prev).
    let mut inflight: Vec<(u32, u32)> = Vec::new();
    // Checkpoints: the snapshot plus how many inflight entries predate it.
    let mut snaps: Vec<(ch_baselines::riscv::rename::RmtSnapshot, usize)> = Vec::new();

    for step in 0..steps {
        match rng.below(8) {
            0..=4 => {
                // A random small rename group.
                let n = 1 + rng.below(4) as usize;
                let group: Vec<(Option<u8>, Vec<u8>)> = (0..n)
                    .map(|_| {
                        let dst = if rng.below(5) == 0 {
                            None
                        } else {
                            Some(rng.below(LOGICALS) as u8)
                        };
                        let srcs = (0..rng.below(3))
                            .map(|_| rng.below(LOGICALS) as u8)
                            .collect();
                        (dst, srcs)
                    })
                    .collect();
                let before = rn.free_count();
                let dsts = group.iter().filter(|(d, _)| d.is_some()).count();
                match rn.rename_group(&group) {
                    Some((renamed, _ev)) => {
                        if rn.free_count() != before - dsts {
                            return Err(format!(
                                "step {step}: group with {dsts} dsts moved free count \
                                 {before} -> {} (expected {})",
                                rn.free_count(),
                                before - dsts
                            ));
                        }
                        for r in &renamed {
                            if let (Some(d), Some(p)) = (r.dst, r.prev_dst) {
                                inflight.push((d, p));
                            }
                        }
                    }
                    None => {
                        if before >= dsts {
                            return Err(format!(
                                "step {step}: stall with {before} free regs for {dsts} dsts"
                            ));
                        }
                        if rn.free_count() != before {
                            return Err(format!("step {step}: failed rename changed free list"));
                        }
                    }
                }
            }
            5 => {
                // Commit everything: release each displaced mapping.
                // Committed state can no longer be rolled back, so the
                // outstanding checkpoints are dropped too.
                snaps.clear();
                for (_d, p) in inflight.drain(..) {
                    rn.release(p);
                }
            }
            6 => {
                snaps.push((rn.snapshot(), inflight.len()));
            }
            _ => {
                // Branch mispredict: roll back to the newest checkpoint.
                if let Some((snap, mark)) = snaps.pop() {
                    // Round-trip: restoring a snapshot of the current
                    // state must be the identity on the RMT.
                    let before: Vec<u32> = (0..LOGICALS as u8).map(|l| rn.mapping(l)).collect();
                    let now = rn.snapshot();
                    rn.restore(&now);
                    let after: Vec<u32> = (0..LOGICALS as u8).map(|l| rn.mapping(l)).collect();
                    if before != after {
                        return Err(format!(
                            "step {step}: identity snapshot/restore changed the RMT"
                        ));
                    }
                    rn.restore(&snap);
                    // Squashed allocations roll back to the free list.
                    for (d, _p) in inflight.drain(mark..) {
                        rn.release(d);
                    }
                }
            }
        }
        // Conservation: the free list, the 64 RMT entries, and the
        // in-flight displaced mappings partition the physical registers.
        let total = rn.free_count() + LOGICALS as usize + inflight.len();
        if total != PHYS as usize {
            return Err(format!(
                "step {step}: free {} + mapped {LOGICALS} + inflight {} != {PHYS}",
                rn.free_count(),
                inflight.len()
            ));
        }
    }
    // Drain: after a final full commit, every non-mapped register is free.
    for (_d, p) in inflight.drain(..) {
        rn.release(p);
    }
    if rn.free_count() != (PHYS - LOGICALS as u32) as usize {
        return Err(format!(
            "final commit left {} free registers, expected {}",
            rn.free_count(),
            PHYS - LOGICALS as u32
        ));
    }
    Ok(())
}
