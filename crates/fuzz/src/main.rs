//! `ch-fuzz`: the cross-ISA differential fuzzing CLI.
//!
//! Runs, in order: the register-machinery invariant oracles, the
//! per-ISA assembler round-trip batch, and the Kern differential batch
//! (three interpreters + simulator commit-stream check per case).
//!
//! ```text
//! ch-fuzz [--cases N] [--seed S] [--limit L] [--out DIR]
//! ```
//!
//! `PROPTEST_SEED` overrides `--seed`, matching the rest of the
//! workspace's property tests. On a divergence the failing program is
//! minimized and written to `tests/regressions/` (or `--out`), the
//! reproducing `PROPTEST_SEED` is printed, and the exit code is 1.

use std::process::ExitCode;

struct Args {
    cases: u32,
    seed: u64,
    limit: u64,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cases: 500,
        seed: 0xC10C,
        limit: ch_fuzz::DEFAULT_LIMIT,
        out: "tests/regressions".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--cases" => {
                args.cases = val("--cases")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?
            }
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--limit" => {
                args.limit = val("--limit")?
                    .parse()
                    .map_err(|e| format!("--limit: {e}"))?
            }
            "--out" => args.out = val("--out")?,
            "--help" | "-h" => {
                return Err("usage: ch-fuzz [--cases N] [--seed S] [--limit L] [--out DIR]".into())
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        args.seed = s.parse().map_err(|e| format!("PROPTEST_SEED {s:?}: {e}"))?;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "ch-fuzz: seed {} ({} cases, limit {} insts/ISA)",
        args.seed, args.cases, args.limit
    );

    if let Err(e) = ch_fuzz::oracle_batch(args.seed, 4000) {
        eprintln!("oracle violation: {e}");
        eprintln!("PROPTEST_SEED={}", args.seed);
        return ExitCode::FAILURE;
    }
    println!("oracles: ring-file wrap/saturation, stall rule, renamer conservation — ok");

    if let Err(e) = ch_fuzz::asm_roundtrip_batch(args.seed, args.cases) {
        eprintln!("assembler round-trip failure: {e}");
        eprintln!("PROPTEST_SEED={}", args.seed);
        return ExitCode::FAILURE;
    }
    println!("asm round-trip: {} programs x 3 ISAs — ok", args.cases);

    match ch_fuzz::differential_batch(args.seed, args.cases, args.limit) {
        Ok(stats) => {
            println!(
                "differential: {} passed, {} skipped (limit), {} instructions committed — ok",
                stats.passed, stats.skipped, stats.committed
            );
            ExitCode::SUCCESS
        }
        Err(f) => {
            eprintln!("divergence at case {}: {}", f.case_index, f.error);
            eprintln!("--- original ---\n{}", f.source);
            eprintln!("--- minimized ---\n{}", f.minimized);
            let dir = args.out.trim_end_matches('/');
            let path = format!("{dir}/fuzz_seed{}_case{}.kern", f.seed, f.case_index);
            eprintln!("PROPTEST_SEED={}", f.seed);
            match std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, &f.minimized)) {
                Ok(()) => eprintln!("minimized reproducer written to {path}"),
                Err(e) => eprintln!("could not write reproducer to {path}: {e}"),
            }
            ExitCode::FAILURE
        }
    }
}
