//! `ch-fuzz`: the cross-ISA differential fuzzing CLI.
//!
//! Runs, in order: the register-machinery invariant oracles, the
//! per-ISA assembler round-trip batch, and the Kern differential batch
//! (three interpreters + simulator commit-stream check per case).
//!
//! ```text
//! ch-fuzz [--cases N] [--seed S] [--limit L] [--out DIR] [--planted]
//! ```
//!
//! `--planted` switches to the planted-mutation mode instead: each case
//! corrupts one source-operand distance in freshly compiled Clockhands
//! or STRAIGHT output and the batch fails unless the static verifier
//! (`ch-verify`) catches at least 95% of the corruptions before
//! execution.
//!
//! `PROPTEST_SEED` overrides `--seed`, matching the rest of the
//! workspace's property tests. On a divergence the failing program is
//! minimized and written to `tests/regressions/` (or `--out`), the
//! reproducing `PROPTEST_SEED` is printed, and the exit code is 1.

use std::process::ExitCode;

struct Args {
    cases: u32,
    seed: u64,
    limit: u64,
    out: String,
    planted: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cases: 500,
        seed: 0xC10C,
        limit: ch_fuzz::DEFAULT_LIMIT,
        out: "tests/regressions".to_string(),
        planted: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--cases" => {
                args.cases = val("--cases")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?
            }
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--limit" => {
                args.limit = val("--limit")?
                    .parse()
                    .map_err(|e| format!("--limit: {e}"))?
            }
            "--out" => args.out = val("--out")?,
            "--planted" => args.planted = true,
            "--help" | "-h" => {
                return Err(
                    "usage: ch-fuzz [--cases N] [--seed S] [--limit L] [--out DIR] [--planted]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        args.seed = s.parse().map_err(|e| format!("PROPTEST_SEED {s:?}: {e}"))?;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "ch-fuzz: seed {} ({} cases, limit {} insts/ISA)",
        args.seed, args.cases, args.limit
    );

    if args.planted {
        // The gated model: window-escaping corruptions, the class the
        // verifier guarantees to catch (the backend-bug signature).
        let escape =
            ch_fuzz::planted_batch(args.seed, args.cases, args.limit, ch_fuzz::Model::Escape);
        println!("planted (escape model):  {}", escape.summary());
        for line in &escape.escapes {
            println!("  {line}");
        }
        // Informational: uniform in-range corruption, which includes
        // in-window value swaps no sound static analysis can reject.
        let uniform =
            ch_fuzz::planted_batch(args.seed, args.cases, args.limit, ch_fuzz::Model::Uniform);
        println!("planted (uniform model): {}", uniform.summary());
        if escape.static_rate() < 0.95 {
            eprintln!("escape-model static catch rate below the 95% target");
            eprintln!("PROPTEST_SEED={}", args.seed);
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    if let Err(e) = ch_fuzz::oracle_batch(args.seed, 4000) {
        eprintln!("oracle violation: {e}");
        eprintln!("PROPTEST_SEED={}", args.seed);
        return ExitCode::FAILURE;
    }
    println!("oracles: ring-file wrap/saturation, stall rule, renamer conservation — ok");

    if let Err(e) = ch_fuzz::asm_roundtrip_batch(args.seed, args.cases) {
        eprintln!("assembler round-trip failure: {e}");
        eprintln!("PROPTEST_SEED={}", args.seed);
        return ExitCode::FAILURE;
    }
    println!("asm round-trip: {} programs x 3 ISAs — ok", args.cases);

    match ch_fuzz::differential_batch(args.seed, args.cases, args.limit) {
        Ok(stats) => {
            println!(
                "differential: {} passed, {} skipped (limit), {} instructions committed — ok",
                stats.passed, stats.skipped, stats.committed
            );
            ExitCode::SUCCESS
        }
        Err(f) => {
            eprintln!("divergence at case {}: {}", f.case_index, f.error);
            eprintln!("--- original ---\n{}", f.source);
            eprintln!("--- minimized ---\n{}", f.minimized);
            let dir = args.out.trim_end_matches('/');
            let path = format!("{dir}/fuzz_seed{}_case{}.kern", f.seed, f.case_index);
            eprintln!("PROPTEST_SEED={}", f.seed);
            match std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, &f.minimized)) {
                Ok(()) => eprintln!("minimized reproducer written to {path}"),
                Err(e) => eprintln!("could not write reproducer to {path}: {e}"),
            }
            ExitCode::FAILURE
        }
    }
}
