//! Structural shrinker: minimizes a failing [`KernProgram`] while the
//! caller's predicate (usually "the differential executor still
//! disagrees") keeps holding.
//!
//! Greedy hill-climb over single-step simplifications, to a fixpoint or
//! an evaluation budget: drop a statement, inline an `if`/`for` body,
//! cut a loop count to 1, replace a call with a constant, drop a helper,
//! or collapse a subexpression to one side or to `0`/`1`. Because edits
//! act on the structure and the renderer always emits well-formed Kern,
//! every candidate is compilable — the predicate never sees syntax
//! errors, only smaller semantics.

use crate::gen::{Expr, Helper, KernProgram, Stmt};

fn shrink_expr_once(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    match e {
        Expr::Bin(_, a, b) => {
            out.push((**a).clone());
            out.push((**b).clone());
        }
        Expr::Arr(idx) => out.push((**idx).clone()),
        Expr::Const(0) => {}
        Expr::Const(1) => out.push(Expr::Const(0)),
        _ => {
            out.push(Expr::Const(0));
            out.push(Expr::Const(1));
        }
    }
    // Recurse one level so deep expressions shrink without re-rendering
    // the whole tree per leaf.
    if let Expr::Bin(op, a, b) = e {
        for sa in shrink_expr_once(a) {
            out.push(Expr::Bin(*op, Box::new(sa), b.clone()));
        }
        for sb in shrink_expr_once(b) {
            out.push(Expr::Bin(*op, a.clone(), Box::new(sb)));
        }
    }
    out
}

/// All single-step simplifications of a statement list.
fn shrink_stmts_once(stmts: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    // Drop any single statement.
    for i in 0..stmts.len() {
        let mut s = stmts.to_vec();
        s.remove(i);
        out.push(s);
    }
    // Simplify any single statement in place.
    for (i, st) in stmts.iter().enumerate() {
        for alt in shrink_stmt_once(st) {
            let mut s = stmts.to_vec();
            s[i] = alt;
            out.push(s);
        }
        // Inline block bodies in place of the block statement.
        if let Stmt::If(_, a, b) = st {
            for body in [a, b] {
                if !body.is_empty() {
                    let mut s = stmts.to_vec();
                    s.splice(i..=i, body.iter().cloned());
                    out.push(s);
                }
            }
        }
        if let Stmt::For(_, body) = st {
            if !body.is_empty() {
                let mut s = stmts.to_vec();
                s.splice(i..=i, body.iter().cloned());
                out.push(s);
            }
        }
    }
    out
}

fn shrink_stmt_once(st: &Stmt) -> Vec<Stmt> {
    let mut out = Vec::new();
    match st {
        Stmt::Assign(v, e) => {
            for se in shrink_expr_once(e) {
                out.push(Stmt::Assign(*v, se));
            }
        }
        Stmt::Compound(v, _, e) => {
            out.push(Stmt::Assign(*v, e.clone()));
            for se in shrink_expr_once(e) {
                out.push(Stmt::Compound(*v, crate::gen::BinOp::Add, se));
            }
        }
        Stmt::ArrStore(idx, e) => {
            for si in shrink_expr_once(idx) {
                out.push(Stmt::ArrStore(si, e.clone()));
            }
            for se in shrink_expr_once(e) {
                out.push(Stmt::ArrStore(idx.clone(), se));
            }
        }
        Stmt::GlobalSet(e) => {
            for se in shrink_expr_once(e) {
                out.push(Stmt::GlobalSet(se));
            }
        }
        Stmt::If(c, a, b) => {
            for sc in shrink_expr_once(c) {
                out.push(Stmt::If(sc, a.clone(), b.clone()));
            }
            for sa in shrink_stmts_once(a) {
                out.push(Stmt::If(c.clone(), sa, b.clone()));
            }
            for sb in shrink_stmts_once(b) {
                out.push(Stmt::If(c.clone(), a.clone(), sb));
            }
        }
        Stmt::For(n, body) => {
            if *n > 1 {
                out.push(Stmt::For(1, body.clone()));
            }
            for sb in shrink_stmts_once(body) {
                out.push(Stmt::For(*n, sb));
            }
        }
        Stmt::Call(v, _, _) => {
            out.push(Stmt::Assign(*v, Expr::Const(1)));
        }
        Stmt::Break => {}
    }
    out
}

/// Whether any statement (recursively) calls helper `k`.
fn calls_helper(stmts: &[Stmt], k: usize) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Call(_, kk, _) => *kk == k,
        Stmt::If(_, a, b) => calls_helper(a, k) || calls_helper(b, k),
        Stmt::For(_, body) => calls_helper(body, k),
        _ => false,
    })
}

fn helper_used(p: &KernProgram, k: usize) -> bool {
    calls_helper(&p.main, k)
        || p.helpers
            .iter()
            .skip(k + 1)
            .any(|h| calls_helper(&h.body, k))
}

fn renumber_calls(stmts: &mut [Stmt], removed: usize) {
    for s in stmts {
        match s {
            Stmt::Call(_, k, _) if *k > removed => *k -= 1,
            Stmt::If(_, a, b) => {
                renumber_calls(a, removed);
                renumber_calls(b, removed);
            }
            Stmt::For(_, body) => renumber_calls(body, removed),
            _ => {}
        }
    }
}

/// All single-step simplifications of a whole program.
fn shrink_program_once(p: &KernProgram) -> Vec<KernProgram> {
    let mut out = Vec::new();
    // Drop an unused helper (call sites were first rewritten to consts).
    for k in 0..p.helpers.len() {
        if !helper_used(p, k) {
            let mut q = p.clone();
            q.helpers.remove(k);
            renumber_calls(&mut q.main, k);
            for h in &mut q.helpers {
                renumber_calls(&mut h.body, k);
            }
            out.push(q);
        }
    }
    // Shrink main.
    for m in shrink_stmts_once(&p.main) {
        out.push(KernProgram {
            main: m,
            ..p.clone()
        });
    }
    // Shrink helper bodies and return expressions.
    for (k, h) in p.helpers.iter().enumerate() {
        for b in shrink_stmts_once(&h.body) {
            let mut q = p.clone();
            q.helpers[k] = Helper {
                body: b,
                ..h.clone()
            };
            out.push(q);
        }
        for r in shrink_expr_once(&h.ret) {
            let mut q = p.clone();
            q.helpers[k] = Helper {
                ret: r,
                ..h.clone()
            };
            out.push(q);
        }
    }
    out
}

/// Rough program size (for preferring strictly smaller candidates).
fn size(p: &KernProgram) -> usize {
    fn stmt_size(s: &Stmt) -> usize {
        match s {
            Stmt::If(_, a, b) => {
                2 + a.iter().map(stmt_size).sum::<usize>() + b.iter().map(stmt_size).sum::<usize>()
            }
            Stmt::For(_, body) => 2 + body.iter().map(stmt_size).sum::<usize>(),
            _ => 1,
        }
    }
    p.main.iter().map(stmt_size).sum::<usize>()
        + p.helpers
            .iter()
            .map(|h| 2 + h.body.iter().map(stmt_size).sum::<usize>())
            .sum::<usize>()
}

/// Minimizes `program` while `still_fails` holds, within `budget`
/// predicate evaluations. Returns the smallest failing program found.
pub fn shrink(
    program: &KernProgram,
    mut budget: u32,
    mut still_fails: impl FnMut(&KernProgram) -> bool,
) -> KernProgram {
    let mut cur = program.clone();
    'outer: loop {
        for cand in shrink_program_once(&cur) {
            if budget == 0 {
                break 'outer;
            }
            if size(&cand) >= size(&cur) {
                continue;
            }
            budget -= 1;
            if still_fails(&cand) {
                cur = cand;
                continue 'outer;
            }
        }
        break;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{render, BinOp};

    #[test]
    fn shrinks_to_the_failing_core() {
        // A program where only `v0 = v0 / 0` matters; everything else is
        // noise the shrinker must strip.
        let p = KernProgram {
            helpers: vec![],
            main: vec![
                Stmt::Assign(1, Expr::Const(42)),
                Stmt::For(5, vec![Stmt::Compound(1, BinOp::Add, Expr::Const(3))]),
                Stmt::Assign(
                    0,
                    Expr::Bin(BinOp::Div, Box::new(Expr::Var(0)), Box::new(Expr::Const(0))),
                ),
                Stmt::GlobalSet(Expr::Var(1)),
            ],
            nvars: 2,
        };
        // "Fails" whenever a division by the constant zero survives.
        fn has_div_zero(stmts: &[Stmt]) -> bool {
            fn expr_has(e: &Expr) -> bool {
                match e {
                    Expr::Bin(BinOp::Div, _, b) => matches!(**b, Expr::Const(0)) || expr_has(b),
                    Expr::Bin(_, a, b) => expr_has(a) || expr_has(b),
                    Expr::Arr(i) => expr_has(i),
                    _ => false,
                }
            }
            stmts.iter().any(|s| match s {
                Stmt::Assign(_, e) | Stmt::Compound(_, _, e) | Stmt::GlobalSet(e) => expr_has(e),
                Stmt::ArrStore(a, b) => expr_has(a) || expr_has(b),
                Stmt::If(c, a, b) => expr_has(c) || has_div_zero(a) || has_div_zero(b),
                Stmt::For(_, body) => has_div_zero(body),
                _ => false,
            })
        }
        let small = shrink(&p, 500, |q| has_div_zero(&q.main));
        assert!(has_div_zero(&small.main));
        assert!(size(&small) < size(&p));
        assert_eq!(small.main.len(), 1, "only the div-by-zero should remain");
        // And it still renders to valid-looking Kern.
        assert!(render(&small).contains("fn main"));
    }
}
