//! Cross-ISA differential fuzzing harness.
//!
//! The paper's central claim is semantic: one program, three ISAs
//! (RISC-V, STRAIGHT, Clockhands), one meaning. This crate checks that
//! claim mechanically, end to end:
//!
//! * [`gen`] — a random well-formed Kern program generator (nested
//!   loops, helper calls, array stores, boundary-heavy constants);
//! * [`asmgen`] — random straight-line assembly generators per ISA, for
//!   assembler/encoder round-trip properties;
//! * [`diff`] — the differential executor: compile through all three
//!   backends, run the three interpreters, compare exit checksums and
//!   global memory, and replay each committed trace through the timing
//!   simulator asserting the retired stream matches;
//! * [`oracle`] — invariant oracles for the register machinery
//!   (Clockhands RP wrap/saturation, STRAIGHT reach, RISC renamer
//!   free-list conservation and checkpoint recovery);
//! * [`planted`] — the planted-mutation mode: corrupt one distance
//!   operand in compiled output and measure `ch-verify`'s catch rate;
//! * [`mod@shrink`] — a structural minimizer that turns a failing program
//!   into a small regression test.
//!
//! Everything is seeded through the workspace's deterministic
//! [`proptest::TestRng`]; `PROPTEST_SEED` reproduces any batch.

#![deny(missing_docs)]

pub mod asmgen;
pub mod diff;
pub mod gen;
pub mod oracle;
pub mod planted;
pub mod shrink;

pub use diff::{run_differential, DiffOutcome, DiffResult, Skip};
pub use gen::{gen_program, render, KernProgram};
pub use planted::{planted_batch, Model, PlantedStats};
pub use shrink::shrink;

use ch_common::error::HarnessError;
use proptest::TestRng;

/// Default per-ISA instruction budget for one differential case. Sized
/// so the generator's worst case (helper chains inside nested loops, a
/// few million dynamic instructions) completes; anything longer is an
/// explicit [`Skip`], never a verdict.
pub const DEFAULT_LIMIT: u64 = 4_000_000;

/// Aggregate statistics from a clean differential batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Cases generated.
    pub cases: u32,
    /// Cases judged and found in agreement on all three ISAs.
    pub passed: u32,
    /// Cases skipped (instruction budget exhausted on some ISA).
    pub skipped: u32,
    /// Total instructions committed across judged cases and ISAs.
    pub committed: u64,
}

/// A divergence found by [`differential_batch`], already minimized.
#[derive(Debug)]
pub struct BatchFailure {
    /// Index of the failing case within the batch.
    pub case_index: u32,
    /// Seed that reproduces the whole batch.
    pub seed: u64,
    /// The original failing Kern source.
    pub source: String,
    /// The shrunk failing Kern source (still failing, usually tiny).
    pub minimized: String,
    /// The divergence observed on the original program.
    pub error: HarnessError,
}

/// Runs `cases` random Kern programs through the differential executor.
///
/// Deterministic in `seed`. On the first divergence the failing program
/// is minimized with [`shrink()`] (the predicate being "the differential
/// executor still rejects it") and returned as a [`BatchFailure`].
pub fn differential_batch(
    seed: u64,
    cases: u32,
    limit: u64,
) -> Result<BatchStats, Box<BatchFailure>> {
    let mut rng = TestRng::from_seed(seed);
    let mut stats = BatchStats {
        cases,
        ..Default::default()
    };
    for i in 0..cases {
        let program = gen::gen_program(&mut rng);
        let src = gen::render(&program);
        let ctx = format!("fuzz case {i}");
        match diff::run_differential(&ctx, &src, limit) {
            Ok(Ok(out)) => {
                stats.passed += 1;
                stats.committed += out.committed.iter().sum::<u64>();
            }
            Ok(Err(_skip)) => stats.skipped += 1,
            Err(error) => {
                let small = shrink::shrink(&program, 300, |cand| {
                    diff::run_differential(&ctx, &gen::render(cand), limit).is_err()
                });
                return Err(Box::new(BatchFailure {
                    case_index: i,
                    seed,
                    source: src,
                    minimized: gen::render(&small),
                    error,
                }));
            }
        }
    }
    Ok(stats)
}

/// Round-trip property over random straight-line programs: for all
/// three ISAs, `assemble(disassemble(p)) == p` where `p` itself came
/// from assembling generated text.
pub fn asm_roundtrip_batch(seed: u64, cases: u32) -> Result<(), String> {
    let mut rng = TestRng::from_seed(seed ^ 0x5bd1_e995);
    for i in 0..cases {
        let len = 4 + rng.below(28) as usize;

        let text = asmgen::gen_clockhands(&mut rng, len);
        let p = clockhands::asm::assemble(&text)
            .map_err(|e| format!("case {i} [clockhands]: generated text rejected: {e}\n{text}"))?;
        let p2 = clockhands::asm::assemble(&clockhands::asm::disassemble(&p))
            .map_err(|e| format!("case {i} [clockhands]: disassembly rejected: {e}"))?;
        if p2 != p {
            return Err(format!(
                "case {i} [clockhands]: assemble(disassemble(p)) != p\n{text}"
            ));
        }

        let text = asmgen::gen_straight(&mut rng, len);
        let p = ch_baselines::straight::asm::assemble(&text)
            .map_err(|e| format!("case {i} [straight]: generated text rejected: {e}\n{text}"))?;
        let p2 =
            ch_baselines::straight::asm::assemble(&ch_baselines::straight::asm::disassemble(&p))
                .map_err(|e| format!("case {i} [straight]: disassembly rejected: {e}"))?;
        if p2 != p {
            return Err(format!(
                "case {i} [straight]: assemble(disassemble(p)) != p\n{text}"
            ));
        }

        let text = asmgen::gen_riscv(&mut rng, len);
        let p = ch_baselines::riscv::asm::assemble(&text)
            .map_err(|e| format!("case {i} [riscv]: generated text rejected: {e}\n{text}"))?;
        let p2 = ch_baselines::riscv::asm::assemble(&ch_baselines::riscv::asm::disassemble(&p))
            .map_err(|e| format!("case {i} [riscv]: disassembly rejected: {e}"))?;
        if p2 != p {
            return Err(format!(
                "case {i} [riscv]: assemble(disassemble(p)) != p\n{text}"
            ));
        }
    }
    Ok(())
}

/// Runs every register-machinery invariant oracle with `seed`-derived
/// randomness. `steps` scales the random walks.
pub fn oracle_batch(seed: u64, steps: u32) -> Result<(), String> {
    let mut rng = TestRng::from_seed(seed ^ 0x9e37_79b9);
    oracle::check_ring_file(&mut rng, steps).map_err(|e| format!("ring file: {e}"))?;
    oracle::check_ring_file_stall_rule(&mut rng, steps / 4 + 1)
        .map_err(|e| format!("ring-file stall rule: {e}"))?;
    oracle::check_renamer(&mut rng, steps).map_err(|e| format!("renamer: {e}"))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_differential_batch() {
        let stats = differential_batch(0xC10C, 25, DEFAULT_LIMIT).unwrap_or_else(|f| {
            panic!(
                "case {}: {}\n--- minimized ---\n{}",
                f.case_index, f.error, f.minimized
            )
        });
        assert_eq!(stats.passed + stats.skipped, stats.cases);
        assert!(stats.passed > 0, "every case skipped — limit far too low");
    }

    #[test]
    fn smoke_asm_roundtrip_batch() {
        asm_roundtrip_batch(0xC10C, 50).unwrap();
    }

    #[test]
    fn smoke_oracle_batch() {
        oracle_batch(0xC10C, 1000).unwrap();
    }
}
