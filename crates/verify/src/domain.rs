//! The abstract value domain shared by the three ISA analyses.
//!
//! Every register-file slot (a hand depth, a ring position, or a logical
//! register) is abstracted as an [`Av`]: a small set of *origins* (which
//! definition the value can be, per incoming path), a *kind* (ordinary
//! value, known constant, pointer at a known offset from some base value,
//! or return address), and the set of *writers* (which physical
//! instruction put the value in this slot — used by the lint layer, not
//! for correctness).
//!
//! Origins are what make the analysis path-sensitive: `mv` copies the
//! source's origins verbatim, so a value relayed along two paths still
//! joins to a singleton set, while a genuine φ of two different
//! definitions joins to a two-element set (legal), and a join that mixes
//! *different function-entry anchors* — the caller's return address vs.
//! an argument, say — means the operand distance is path-inconsistent
//! (an error when read).

use std::collections::BTreeMap;

/// Sentinel "call site" for values that are opaque at function entry
/// (caller-owned hands / ABI-junk registers) rather than clobbered by a
/// specific call instruction.
pub const ENTRY_SITE: u32 = u32::MAX;

/// Where an abstract value may come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Origin {
    /// Produced by the instruction at this index.
    Inst(u32),
    /// The return value of the call at this index (per the calling
    /// convention's retval slot).
    Retval(u32),
    /// A function-entry anchor (argument, return address, entry SP, or a
    /// callee-saved register the caller owns); the token id is
    /// ISA-defined.
    Entry(u16),
    /// A STRAIGHT ring slot occupied by a value-less instruction
    /// (store/branch/nop/…); reading it is an error.
    Hole(u32),
    /// A value that did not survive the call at this index (or, with
    /// [`ENTRY_SITE`], was never owned by this function); reading it is
    /// an error.
    Opaque(u32),
    /// Never written on some incoming path; reading it is an error.
    Uninit,
}

/// What the value *is*, refining the origin set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// An ordinary runtime value.
    Val,
    /// A known constant.
    Cst(i64),
    /// `base + off` for the value identified by origin `base` — tracked
    /// through `addi` chains so frame addressing stays symbolic.
    Ptr {
        /// The origin whose value this pointer offsets.
        base: Origin,
        /// Byte offset from that value.
        off: i64,
    },
    /// A return address (written by a call, or the entry RA anchor).
    RetAddr,
}

impl Kind {
    fn join(self, other: Kind) -> Kind {
        if self == other {
            self
        } else {
            Kind::Val
        }
    }
}

/// Origin sets and writer sets are widened to `None` ("anything") past
/// this size; widened reads are assumed initialized (no false positives).
const ORIGIN_CAP: usize = 8;
const WRITER_CAP: usize = 12;

/// Marks instructions whose written value was (possibly) read somewhere;
/// unmarked `mv`s / zero-fills become lints after the fixpoint.
#[derive(Debug)]
pub struct Marks {
    used: Vec<bool>,
}

impl Marks {
    /// A fresh mark table for a program of `len` instructions.
    pub fn new(len: usize) -> Self {
        Marks {
            used: vec![false; len],
        }
    }

    /// Marks the instruction at `i` as having its value read.
    pub fn mark(&mut self, i: u32) {
        if let Some(slot) = self.used.get_mut(i as usize) {
            *slot = true;
        }
    }

    /// Whether the instruction at `i` ever had its value read.
    pub fn is_used(&self, i: u32) -> bool {
        self.used.get(i as usize).copied().unwrap_or(true)
    }
}

/// One abstract slot value.
#[derive(Debug, Clone, PartialEq)]
pub struct Av {
    /// Possible origins; `None` is the widened top ("anything, assumed
    /// initialized").
    pub origins: Option<Vec<Origin>>,
    /// Value kind.
    pub kind: Kind,
    /// Instructions whose write may occupy this slot (`None` = widened;
    /// members were marked used at widening time so no lint is lost).
    pub writers: Option<Vec<u32>>,
}

impl Av {
    /// A value produced by instruction `i`.
    pub fn inst(i: u32) -> Av {
        Av {
            origins: Some(vec![Origin::Inst(i)]),
            kind: Kind::Val,
            writers: Some(vec![i]),
        }
    }

    /// A known constant produced by instruction `i`.
    pub fn cst(i: u32, v: i64) -> Av {
        Av {
            kind: Kind::Cst(v),
            ..Av::inst(i)
        }
    }

    /// A function-entry anchor.
    pub fn entry(tok: u16) -> Av {
        Av {
            origins: Some(vec![Origin::Entry(tok)]),
            kind: Kind::Val,
            writers: Some(Vec::new()),
        }
    }

    /// A never-written slot.
    pub fn uninit() -> Av {
        Av {
            origins: Some(vec![Origin::Uninit]),
            kind: Kind::Val,
            writers: Some(Vec::new()),
        }
    }

    /// A slot clobbered by (or never owned across) the call at `site`.
    pub fn opaque(site: u32) -> Av {
        Av {
            origins: Some(vec![Origin::Opaque(site)]),
            kind: Kind::Val,
            writers: Some(Vec::new()),
        }
    }

    /// A STRAIGHT value-less ring slot occupied by instruction `i`.
    pub fn hole(i: u32) -> Av {
        Av {
            origins: Some(vec![Origin::Hole(i)]),
            kind: Kind::Val,
            writers: Some(Vec::new()),
        }
    }

    /// The return value of the call at `i`.
    pub fn retval(i: u32) -> Av {
        Av {
            origins: Some(vec![Origin::Retval(i)]),
            kind: Kind::Val,
            writers: Some(vec![i]),
        }
    }

    /// A machine-reset value (defined by hardware, no tracked identity —
    /// e.g. the reset stack pointer). Reads never error.
    pub fn reset() -> Av {
        Av {
            origins: Some(Vec::new()),
            kind: Kind::Val,
            writers: Some(Vec::new()),
        }
    }

    /// The hardwired zero register.
    pub fn zero() -> Av {
        Av {
            origins: Some(Vec::new()),
            kind: Kind::Cst(0),
            writers: Some(Vec::new()),
        }
    }

    /// Whether the single origin of this value is exactly the entry
    /// anchor `tok` (directly, or as a pointer offset 0 from it — the
    /// shape an `addi sp, sp, +frame` restore produces).
    pub fn is_entry_value(&self, tok: u16) -> bool {
        if let Kind::Ptr {
            base: Origin::Entry(t),
            off: 0,
        } = self.kind
        {
            if t == tok {
                return true;
            }
        }
        matches!(&self.origins, Some(o) if o.as_slice() == [Origin::Entry(tok)])
    }

    /// Joins `other` into `self`; returns whether `self` changed.
    /// Widened writer sets mark their members used via `marks` so the
    /// lint layer never flags a value that escaped into a join.
    pub fn join_with(&mut self, other: &Av, marks: &mut Marks) -> bool {
        let mut changed = false;
        // Origins: set union with cap-widening to Top.
        let widen_origins = match (&mut self.origins, &other.origins) {
            (None, _) => false,
            (Some(_), None) => {
                changed = true;
                true
            }
            (Some(a), Some(b)) => {
                for o in b {
                    if let Err(pos) = a.binary_search(o) {
                        a.insert(pos, *o);
                        changed = true;
                    }
                }
                if a.len() > ORIGIN_CAP {
                    changed = true;
                    true
                } else {
                    false
                }
            }
        };
        if widen_origins {
            self.origins = None;
        }
        // Kind lattice: equal or Val.
        let k = self.kind.join(other.kind);
        if k != self.kind {
            self.kind = k;
            changed = true;
        }
        // Writers: union, widening marks everything used.
        let widen = match (&mut self.writers, &other.writers) {
            (None, _) => false,
            (Some(a), None) => {
                for w in a.iter() {
                    marks.mark(*w);
                }
                changed = true;
                true
            }
            (Some(a), Some(b)) => {
                for w in b {
                    if let Err(pos) = a.binary_search(w) {
                        a.insert(pos, *w);
                        changed = true;
                    }
                }
                if a.len() > WRITER_CAP {
                    for w in a.iter() {
                        marks.mark(*w);
                    }
                    changed = true;
                    true
                } else {
                    false
                }
            }
        };
        if widen {
            self.writers = None;
        }
        changed
    }
}

/// A symbolic memory location: (base value identity, byte offset).
pub type MemKey = (Origin, i64);

/// The tracked frame/global memory image: exact symbolic addresses only.
///
/// Stores through untracked (computed) addresses are deliberately *not*
/// treated as clobbering this map — that is the one documented source of
/// unsoundness, accepted so that array writes inside a frame never
/// poison the RA/callee-saved checks with false positives.
pub type Frame = BTreeMap<MemKey, Av>;

/// Joins two frames by key intersection (a slot only survives a join if
/// it was stored on every incoming path), marking dropped writers used.
pub fn join_frames(a: &mut Frame, b: &Frame, marks: &mut Marks) -> bool {
    let mut changed = false;
    let drop_keys: Vec<MemKey> = a.keys().filter(|k| !b.contains_key(k)).cloned().collect();
    for k in drop_keys {
        if let Some(av) = a.remove(&k) {
            if let Some(ws) = av.writers {
                for w in ws {
                    marks.mark(w);
                }
            }
            changed = true;
        }
    }
    for (k, av) in a.iter_mut() {
        if av.join_with(&b[k], marks) {
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mv_copy_prop_joins_to_singleton() {
        // The same definition relayed along two paths must not look like
        // a φ: identical origin sets join without change.
        let mut marks = Marks::new(8);
        let mut a = Av::inst(3);
        let b = Av {
            writers: Some(vec![5]), // relayed by a mv at 5
            ..Av::inst(3)
        };
        assert!(a.join_with(&b, &mut marks)); // writer set grew
        assert_eq!(a.origins, Some(vec![Origin::Inst(3)]));
        assert!(!a.join_with(&b, &mut marks)); // fixpoint
    }

    #[test]
    fn phi_of_two_defs_is_a_two_element_set() {
        let mut marks = Marks::new(8);
        let mut a = Av::inst(1);
        assert!(a.join_with(&Av::inst(2), &mut marks));
        assert_eq!(a.origins, Some(vec![Origin::Inst(1), Origin::Inst(2)]));
    }

    #[test]
    fn kind_join_keeps_equal_and_drops_mismatch() {
        let mut marks = Marks::new(8);
        let p = Kind::Ptr {
            base: Origin::Entry(1),
            off: -16,
        };
        let mut a = Av {
            kind: p,
            ..Av::inst(0)
        };
        a.join_with(
            &Av {
                kind: p,
                ..Av::inst(0)
            },
            &mut marks,
        );
        assert_eq!(a.kind, p);
        a.join_with(&Av::inst(0), &mut marks);
        assert_eq!(a.kind, Kind::Val);
    }

    #[test]
    fn origin_cap_widens_to_top() {
        let mut marks = Marks::new(64);
        let mut a = Av::inst(0);
        for i in 1..=(ORIGIN_CAP as u32) {
            a.join_with(&Av::inst(i), &mut marks);
        }
        assert_eq!(a.origins, None);
        // Top absorbs anything without change.
        assert!(!a.join_with(&Av::uninit(), &mut marks));
    }

    #[test]
    fn entry_value_recognised_directly_and_as_restored_pointer() {
        let av = Av::entry(7);
        assert!(av.is_entry_value(7));
        assert!(!av.is_entry_value(8));
        let restored = Av {
            kind: Kind::Ptr {
                base: Origin::Entry(7),
                off: 0,
            },
            ..Av::inst(9)
        };
        assert!(restored.is_entry_value(7));
    }

    #[test]
    fn frame_join_intersects_keys() {
        let mut marks = Marks::new(8);
        let k1 = (Origin::Entry(1), -8);
        let k2 = (Origin::Entry(1), -16);
        let mut a = Frame::new();
        a.insert(k1, Av::inst(1));
        a.insert(k2, Av::inst(2));
        let mut b = Frame::new();
        b.insert(k1, Av::inst(1));
        assert!(join_frames(&mut a, &b, &mut marks));
        assert!(a.contains_key(&k1) && !a.contains_key(&k2));
        // The dropped slot's writer escaped the analysis: marked used.
        assert!(marks.is_used(2));
    }
}
