//! Shared operand-read checking and transfer-function helpers.

use crate::domain::{Av, Frame, Kind, Marks, Origin, ENTRY_SITE};
use crate::engine::Sink;

/// How a read operand is being used; some uses legalise or forbid value
/// kinds (a return address may be spilled or relayed, never computed
/// on; an unwritten callee-saved register may only be saved).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseCx {
    /// ALU input.
    Alu,
    /// The value operand of a store (spills/saves are legal here).
    StoreValue,
    /// The base-address operand of a load or store.
    Base,
    /// Branch comparison input.
    Branch,
    /// The target of an indirect jump (a return).
    JrTarget,
    /// The target of an indirect call.
    CallTarget,
    /// Source of a register move (relays are legal for any kind).
    Mv,
    /// The exit-value operand of `halt`.
    Halt,
}

/// Convention role of an entry token (a register slot holding a
/// caller-provided value at function entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// Caller-owned argument or leftover: freely readable as data.
    Plain,
    /// Callee-saved: may only be saved (stored) or relayed (mv).
    CalleeSaved,
    /// The return address.
    RetAddr,
}

/// Per-analysis options.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Check calling-convention rules (callee-saved preservation, stack
    /// balance, return-address discipline) in addition to pure dataflow.
    pub conventions: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options { conventions: true }
    }
}

/// Marks every writer of `av` as used (the value was read or escaped).
pub fn mark_av(av: &Av, marks: &mut Marks) {
    if let Some(ws) = &av.writers {
        for w in ws {
            marks.mark(*w);
        }
    }
}

/// Checks one operand read, reporting findings to `sink`.
///
/// `entry_kind` classifies entry tokens by convention role (plain
/// argument, callee-saved, return address); `describe_entry` renders an
/// entry token for messages.
#[allow(clippy::too_many_arguments)]
pub fn check_read(
    av: &Av,
    inst: u32,
    operand: &str,
    cx: UseCx,
    opts: &Options,
    sink: &mut Sink,
    entry_kind: &dyn Fn(u16) -> EntryKind,
    describe_entry: &dyn Fn(u16) -> String,
) {
    let op = || Some(operand.to_string());
    if let Some(origins) = &av.origins {
        let mut entry_toks: Vec<u16> = Vec::new();
        for o in origins {
            match *o {
                Origin::Uninit => sink.error(
                    "E-UNINIT",
                    Some(inst),
                    op(),
                    "reads a slot never written on some incoming path".to_string(),
                ),
                Origin::Hole(site) => sink.error(
                    "E-HOLE",
                    Some(inst),
                    op(),
                    format!("reads the value-less result slot of instruction {site}"),
                ),
                Origin::Opaque(site) if site == ENTRY_SITE => sink.error(
                    "E-CLOBBER",
                    Some(inst),
                    op(),
                    "reads a caller-owned slot with no defined value at function entry".to_string(),
                ),
                Origin::Opaque(site) => sink.error(
                    "E-CLOBBER",
                    Some(inst),
                    op(),
                    format!("reads a value that did not survive the call at instruction {site}"),
                ),
                Origin::Entry(t) => entry_toks.push(t),
                Origin::Inst(_) | Origin::Retval(_) => {}
            }
        }
        // A read that resolves to different *plain* caller values on
        // different paths is legal dataflow — a phi of relayed
        // arguments (`x = p1; loop { use x; x = p0; }` merges two
        // argument relays at the loop join). The return address and
        // callee-saved slots, though, are only ever moved positionally
        // by prologue/epilogue machinery, so a read mixing their
        // identities across paths means some path misplaced a
        // distance.
        if entry_toks.len() > 1
            && entry_toks
                .iter()
                .any(|t| entry_kind(*t) != EntryKind::Plain)
        {
            let named: Vec<String> = entry_toks.iter().map(|t| describe_entry(*t)).collect();
            sink.error(
                "E-PATH",
                Some(inst),
                op(),
                format!(
                    "operand distance is path-inconsistent: resolves to {} depending on the \
                     incoming path",
                    named.join(" or ")
                ),
            );
        }
        // A callee-saved entry value may be *saved* (store) or *relayed*
        // (mv — the register equivalent of a save/restore pair, used by
        // the clobber-only epilogues to re-establish the window from the
        // ring). Any data use is still flagged here: origins follow the
        // value through relays, so the E-CSREAD fires at the consuming
        // read instead.
        if opts.conventions && cx != UseCx::StoreValue && cx != UseCx::Mv {
            for t in &entry_toks {
                if entry_kind(*t) == EntryKind::CalleeSaved {
                    sink.error(
                        "E-CSREAD",
                        Some(inst),
                        op(),
                        format!(
                            "reads callee-saved {} before this function has written it \
                             (only saving or relaying it is allowed)",
                            describe_entry(*t)
                        ),
                    );
                }
            }
        }
    }
    if opts.conventions {
        let is_ra = av.kind == Kind::RetAddr;
        match cx {
            UseCx::Alu | UseCx::Base | UseCx::Branch | UseCx::Halt if is_ra => sink.error(
                "E-RAKIND",
                Some(inst),
                op(),
                "a return address is used as data (allowed: spill, relay, jr)".to_string(),
            ),
            UseCx::JrTarget if !is_ra => sink.error(
                "E-RETADDR",
                Some(inst),
                op(),
                "indirect jump target is not a return address".to_string(),
            ),
            _ => {}
        }
    }
}

/// The abstract result of `addi dst, src, imm` (also used for `spaddi`):
/// constants fold, pointers shift, and a single-origin plain value
/// becomes a pointer anchored at that origin (this is how the symbolic
/// frame tracking follows `sp = caller_sp - frame`).
pub fn addi_result(i: u32, src: &Av, imm: i64) -> Av {
    let kind = match (&src.kind, &src.origins) {
        (Kind::Cst(c), _) => Kind::Cst(c.wrapping_add(imm)),
        (Kind::Ptr { base, off }, _) => Kind::Ptr {
            base: *base,
            off: off.wrapping_add(imm),
        },
        (Kind::Val, Some(o)) if o.len() == 1 => match o[0] {
            Origin::Uninit | Origin::Hole(_) | Origin::Opaque(_) => Kind::Val,
            base => Kind::Ptr { base, off: imm },
        },
        _ => Kind::Val,
    };
    Av {
        kind,
        ..Av::inst(i)
    }
}

/// The abstract result of a load at `i` through `base_av + offset`:
/// a tracked frame slot's value if the address is symbolic and known,
/// else a fresh opaque-but-defined value (untracked memory is assumed
/// initialized — the interpreters zero-fill, so this can never be a
/// false positive).
pub fn load_result(i: u32, frame: &Frame, base_av: &Av, offset: i32, marks: &mut Marks) -> Av {
    if let Kind::Ptr { base, off } = base_av.kind {
        if let Some(v) = frame.get(&(base, off.wrapping_add(offset as i64))) {
            mark_av(v, marks);
            let mut v = v.clone();
            v.writers = Some(vec![i]);
            return v;
        }
    }
    Av::inst(i)
}

/// Records a store of `value` through `base_av + offset` into the
/// symbolic frame, when the address is tracked. Stores through unknown
/// addresses are dropped (see [`crate::domain::Frame`]).
pub fn store_effect(frame: &mut Frame, base_av: &Av, offset: i32, value: Av) {
    if let Kind::Ptr { base, off } = base_av.kind {
        frame.insert((base, off.wrapping_add(offset as i64)), value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tokens >= 100 are callee-saved, token 1 is the return address.
    fn classify(t: u16) -> EntryKind {
        match t {
            1 => EntryKind::RetAddr,
            t if t >= 100 => EntryKind::CalleeSaved,
            _ => EntryKind::Plain,
        }
    }

    fn run_check(av: &Av, cx: UseCx) -> Vec<&'static str> {
        let mut sink = Sink::new("f");
        let opts = Options::default();
        check_read(av, 0, "x", cx, &opts, &mut sink, &classify, &|t| {
            format!("tok{t}")
        });
        sink.into_diags().iter().map(|d| d.code).collect()
    }

    #[test]
    fn uninit_and_clobber_reads_flagged() {
        assert_eq!(run_check(&Av::uninit(), UseCx::Alu), vec!["E-UNINIT"]);
        assert_eq!(run_check(&Av::opaque(7), UseCx::Alu), vec!["E-CLOBBER"]);
        assert_eq!(run_check(&Av::hole(3), UseCx::Alu), vec!["E-HOLE"]);
        assert!(run_check(&Av::inst(1), UseCx::Alu).is_empty());
    }

    #[test]
    fn mixed_entry_anchors_are_path_inconsistent() {
        // Return address on one path, an argument on the other: no
        // legal program produces this — a distance was misplaced.
        let mut marks = Marks::new(4);
        let mut av = Av::entry(1);
        av.join_with(&Av::entry(2), &mut marks);
        assert_eq!(run_check(&av, UseCx::Alu), vec!["E-PATH"]);
        // Callee-saved mixed with an argument: likewise flagged (the
        // data read also trips E-CSREAD).
        let mut av = Av::entry(100);
        av.join_with(&Av::entry(2), &mut marks);
        assert_eq!(run_check(&av, UseCx::Alu), vec!["E-CSREAD", "E-PATH"]);
    }

    #[test]
    fn mixed_plain_arguments_are_a_legal_phi() {
        // fuzz seed 777 case 2336: `x = p1; loop { use x; x = p0; }`
        // merges relays of two different arguments at the loop join —
        // legal dataflow, not a misplaced distance.
        let mut marks = Marks::new(4);
        let mut av = Av::entry(2);
        av.join_with(&Av::entry(3), &mut marks);
        assert!(run_check(&av, UseCx::Alu).is_empty());
    }

    #[test]
    fn callee_saved_read_is_only_legal_as_a_save_or_relay() {
        let av = Av::entry(100);
        assert_eq!(run_check(&av, UseCx::Alu), vec!["E-CSREAD"]);
        assert_eq!(run_check(&av, UseCx::Branch), vec!["E-CSREAD"]);
        assert!(run_check(&av, UseCx::StoreValue).is_empty());
        // Relays are the register analogue of a save/restore: origins
        // follow the value, so any data use is still flagged there.
        assert!(run_check(&av, UseCx::Mv).is_empty());
    }

    #[test]
    fn return_address_discipline() {
        let ra = Av {
            kind: Kind::RetAddr,
            ..Av::entry(1)
        };
        assert_eq!(run_check(&ra, UseCx::Alu), vec!["E-RAKIND"]);
        assert!(run_check(&ra, UseCx::StoreValue).is_empty());
        assert!(run_check(&ra, UseCx::Mv).is_empty());
        assert!(run_check(&ra, UseCx::JrTarget).is_empty());
        assert_eq!(run_check(&Av::inst(1), UseCx::JrTarget), vec!["E-RETADDR"]);
    }

    #[test]
    fn addi_tracks_pointers_and_constants() {
        let sp = Av {
            kind: Kind::Ptr {
                base: Origin::Entry(9),
                off: -32,
            },
            ..Av::inst(0)
        };
        let r = addi_result(1, &sp, 32);
        assert!(r.is_entry_value(9));
        let c = addi_result(1, &Av::cst(0, 5), 3);
        assert_eq!(c.kind, Kind::Cst(8));
        // A single-origin plain value becomes a pointer anchored there.
        let a = addi_result(1, &Av::entry(4), -16);
        assert_eq!(
            a.kind,
            Kind::Ptr {
                base: Origin::Entry(4),
                off: -16
            }
        );
    }

    #[test]
    fn frame_roundtrip_preserves_identity() {
        let mut marks = Marks::new(8);
        let mut frame = Frame::new();
        let sp = addi_result(0, &Av::entry(9), -16);
        store_effect(&mut frame, &sp, 8, Av::entry(42));
        let back = load_result(5, &frame, &sp, 8, &mut marks);
        assert!(back.is_entry_value(42));
        // Untracked load: fresh defined value, not an error.
        let fresh = load_result(6, &frame, &Av::inst(1), 0, &mut marks);
        assert_eq!(fresh.origins, Some(vec![Origin::Inst(6)]));
    }
}
