#![deny(missing_docs)]
//! `ch-verify`: a path-sensitive static dataflow verifier for Clockhands,
//! STRAIGHT, and RISC assembly.
//!
//! All three ISAs of this repository share a failure mode that register
//! names hide: a *distance* operand (`t[3]`, `[17]`) names "the value
//! written N writes ago", so one extra or missing write anywhere on a
//! path silently shifts every later operand to a different value. The
//! interpreters cannot catch this — a wrong distance still reads *some*
//! register (or silently reads zero past the write count). This crate
//! closes the gap statically: it rebuilds the control-flow graph of an
//! assembled program, runs a meet-over-all-paths abstract interpretation
//! of every function, and proves that each source operand resolves to a
//! unique, initialized definition on every incoming path — plus the
//! calling-convention obligations (callee-saved `v` restoration, stack
//! balance, return-address discipline) that the backends rely on.
//!
//! The same engine powers a lint layer: relay `mv`s and edge-fix writes
//! whose value is provably never read are reported as warnings with
//! per-function counts (see [`FnSummary`]).
//!
//! Entry points: [`verify_clockhands`], [`verify_straight`],
//! [`verify_riscv`] — each takes an assembled program and returns a
//! [`Report`].

pub mod cfg;
pub mod check;
mod clockhands_isa;
pub mod domain;
pub mod engine;
mod riscv_isa;
mod straight_isa;

pub use check::Options;
pub use clockhands_isa::verify_clockhands;
pub use riscv_isa::verify_riscv;
pub use straight_isa::verify_straight;

use cfg::Func;
use ch_common::error::{Diagnostic, Severity};
use domain::Marks;
use engine::Sink;

/// Per-function verification summary (instruction count + lint counts).
#[derive(Debug, Clone)]
pub struct FnSummary {
    /// Function name (label at its entry, or `fn@<index>`).
    pub name: String,
    /// Entry instruction index.
    pub entry: u32,
    /// Number of instructions in the function body.
    pub insts: usize,
    /// Relay moves whose value is never read on any path.
    pub dead_relays: usize,
    /// Edge-fix writes (`li` fillers and the like) never read.
    pub redundant_fixes: usize,
}

/// The result of verifying one program.
#[derive(Debug, Clone)]
pub struct Report {
    /// Which ISA was verified (`"clockhands"`, `"straight"`, `"riscv"`).
    pub isa: &'static str,
    /// All findings, errors and warnings, in function/instruction order.
    pub diags: Vec<Diagnostic>,
    /// Per-function summaries.
    pub functions: Vec<FnSummary>,
    /// Instructions reachable from no function (dead code).
    pub unreachable: usize,
    /// Per-instruction reachability: `covered[i]` is true when
    /// instruction `i` belongs to some function's CFG and was therefore
    /// analyzed. The planted-mutation fuzz mode uses this to avoid
    /// planting corruptions in dead code.
    pub covered: Vec<bool>,
}

impl Report {
    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(|d| d.severity == Severity::Error)
    }

    /// The warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Whether the program verified with no errors (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Total dead relays across all functions.
    pub fn dead_relays(&self) -> usize {
        self.functions.iter().map(|f| f.dead_relays).sum()
    }

    /// Total redundant edge fixes across all functions.
    pub fn redundant_fixes(&self) -> usize {
        self.functions.iter().map(|f| f.redundant_fixes).sum()
    }

    /// Renders every finding, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }
}

/// What a never-read instruction counts as in the lint layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LintClass {
    /// A relay/copy move.
    Relay,
    /// An edge-fix or filler write (`li`).
    Fix,
}

/// Counts never-read relay moves and fix writes in `func`, emitting one
/// per-function warning per lint class. `classify` maps an instruction
/// index to its lint class when the instruction is a candidate.
pub(crate) fn lint_function(
    func: &Func,
    marks: &Marks,
    sink: &mut Sink,
    classify: &dyn Fn(u32) -> Option<LintClass>,
) -> (usize, usize) {
    let mut dead_relays = 0usize;
    let mut redundant_fixes = 0usize;
    let mut first: [Option<u32>; 2] = [None, None];
    for b in &func.blocks {
        for i in b.start..b.end {
            if marks.is_used(i) {
                continue;
            }
            match classify(i) {
                Some(LintClass::Relay) => {
                    dead_relays += 1;
                    first[0].get_or_insert(i);
                }
                Some(LintClass::Fix) => {
                    redundant_fixes += 1;
                    first[1].get_or_insert(i);
                }
                None => {}
            }
        }
    }
    if dead_relays > 0 {
        sink.warning(
            "W-DEAD-RELAY",
            first[0],
            None,
            format!("{dead_relays} relay move(s) whose value is never read on any path"),
        );
    }
    if redundant_fixes > 0 {
        sink.warning(
            "W-REDUNDANT-FIX",
            first[1],
            None,
            format!("{redundant_fixes} edge-fix write(s) whose value is never read on any path"),
        );
    }
    (dead_relays, redundant_fixes)
}

/// Emits the program-level unreachable-code warning and returns the
/// count. `covered` must hold one flag per instruction.
pub(crate) fn lint_unreachable(covered: &[bool], diags: &mut Vec<Diagnostic>) -> usize {
    let unreachable = covered.iter().filter(|c| !**c).count();
    if unreachable > 0 {
        let first = covered.iter().position(|c| !*c).unwrap_or(0) as u32;
        diags.push(Diagnostic {
            severity: Severity::Warning,
            code: "W-UNREACH",
            function: "<program>".to_string(),
            inst: Some(first),
            operand: None,
            message: format!("{unreachable} instruction(s) reachable from no function"),
        });
    }
    unreachable
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_partitions_by_severity() {
        let mk = |severity, code: &'static str| Diagnostic {
            severity,
            code,
            function: "f".into(),
            inst: None,
            operand: None,
            message: "m".into(),
        };
        let r = Report {
            isa: "clockhands",
            diags: vec![
                mk(Severity::Error, "E-UNINIT"),
                mk(Severity::Warning, "W-DEAD-RELAY"),
            ],
            functions: vec![FnSummary {
                name: "f".into(),
                entry: 0,
                insts: 3,
                dead_relays: 1,
                redundant_fixes: 0,
            }],
            unreachable: 0,
            covered: vec![true; 3],
        };
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.warnings().count(), 1);
        assert!(!r.is_clean());
        assert_eq!(r.dead_relays(), 1);
        assert!(r.render().contains("error[E-UNINIT]"));
    }
}
