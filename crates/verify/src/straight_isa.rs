//! The STRAIGHT frontend for [`verify_straight`].
//!
//! STRAIGHT has a single ring: *every* instruction occupies the next
//! slot (Section 2 of the paper — this is why its compiler must pad
//! convergence points until distances agree), but only value-producing
//! instructions put a meaningful result there. The abstract state is
//! the youngest 127 slots — value-less slots carry a *hole* so that a
//! distance landing on a `store`/`nop`/`spaddi` slot is a definite
//! error (E-HOLE), not a silent garbage read. The join at convergence
//! points is exactly the paper's static-reach rule: if two paths place
//! the same entry-anchored value at different distances, the joined
//! slot mixes entry anchors and any read reports E-PATH.
//!
//! Convention model (mirrors `ch-compiler`'s STRAIGHT backend): a
//! called function sees the call's return address at distance 1 and
//! its arguments at the next distances; the special `sp` register must
//! be restored (`spaddi +frame`) before every return. STRAIGHT has no
//! callee-saved ring slots — everything is positional.

use crate::cfg::{build_funcs, Flow, Func};
use crate::check::{
    addi_result, check_read, load_result, mark_av, store_effect, EntryKind, Options, UseCx,
};
use crate::domain::{join_frames, Av, Frame, Kind, Marks, ENTRY_SITE};
use crate::engine::{fixpoint, AbsState, Sink};
use crate::{lint_function, lint_unreachable, FnSummary, LintClass, Report};
use ch_baselines::straight::{StInst, StProgram, StSrc, MAX_DISTANCE};
use ch_common::exec::AluOp;

const DEPTH: usize = MAX_DISTANCE as usize;
/// Entry token of the special SP register (ring tokens are `1..=127`).
const SP_TOK: u16 = 256;
/// How many entry distances are modeled as caller-meaningful (return
/// address at 1, arguments after it); deeper slots are caller leftovers.
const ARG_DEPTH: u16 = 12;

fn describe(t: u16) -> String {
    match t {
        1 => "the entry return address [1]".to_string(),
        SP_TOK => "the entry sp".to_string(),
        d => format!("entry [{d}]"),
    }
}

/// The ring window (index 0 = distance 1), the SP register, the frame.
#[derive(Clone)]
struct StState {
    ring: Vec<Av>,
    sp: Av,
    frame: Frame,
}

impl StState {
    fn push(&mut self, av: Av) {
        self.ring.insert(0, av);
        self.ring.truncate(DEPTH);
    }

    fn mark_all(&self, marks: &mut Marks) {
        for av in &self.ring {
            mark_av(av, marks);
        }
        mark_av(&self.sp, marks);
        for av in self.frame.values() {
            mark_av(av, marks);
        }
    }

    fn convention_entry() -> StState {
        let mut ring = vec![Av::opaque(ENTRY_SITE); DEPTH];
        ring[0] = Av {
            kind: Kind::RetAddr,
            ..Av::entry(1)
        };
        for d in 2..=ARG_DEPTH {
            ring[d as usize - 1] = Av::entry(d);
        }
        StState {
            ring,
            sp: Av::entry(SP_TOK),
            frame: Frame::new(),
        }
    }

    fn machine_entry() -> StState {
        StState {
            ring: vec![Av::uninit(); DEPTH],
            sp: Av::reset(),
            frame: Frame::new(),
        }
    }
}

impl AbsState for StState {
    fn join_with(&mut self, other: &Self, marks: &mut Marks) -> bool {
        let mut changed = false;
        for (av, oav) in self.ring.iter_mut().zip(&other.ring) {
            changed |= av.join_with(oav, marks);
        }
        changed |= self.sp.join_with(&other.sp, marks);
        changed |= join_frames(&mut self.frame, &other.frame, marks);
        changed
    }
}

fn flow_of(inst: &StInst) -> Flow {
    match *inst {
        StInst::Branch { target, .. } => Flow::Branch(target),
        StInst::Jump { target } => Flow::Jump(target),
        StInst::Call { target } => Flow::Call(target),
        StInst::JumpReg { .. } => Flow::Ret,
        StInst::Halt { .. } => Flow::Halt,
        _ => Flow::Fall,
    }
}

#[allow(clippy::too_many_arguments)]
fn read_src(
    st: &StState,
    src: StSrc,
    i: u32,
    cx: UseCx,
    opts: &Options,
    sink: &mut Sink,
    marks: &mut Marks,
) -> Av {
    let av = match src {
        StSrc::Zero => return Av::zero(),
        StSrc::Sp => st.sp.clone(),
        StSrc::Dist(d) => {
            if !src.is_valid() {
                sink.error(
                    "E-DIST",
                    Some(i),
                    Some(src.to_string()),
                    format!("distance {d} is outside the encodable range 1..={MAX_DISTANCE}"),
                );
                return Av::inst(i);
            }
            st.ring[d as usize - 1].clone()
        }
    };
    mark_av(&av, marks);
    check_read(
        &av,
        i,
        &src.to_string(),
        cx,
        opts,
        sink,
        &|t| {
            if t == 1 {
                EntryKind::RetAddr
            } else {
                EntryKind::Plain
            }
        },
        &describe,
    );
    av
}

fn transfer(
    prog: &StProgram,
    func: &Func,
    b: usize,
    mut st: StState,
    marks: &mut Marks,
    sink: &mut Sink,
    opts: &Options,
) -> Vec<(usize, StState)> {
    let block = &func.blocks[b];
    for i in block.start..block.end {
        let inst = &prog.insts[i as usize];
        match *inst {
            StInst::Alu { src1, src2, .. } => {
                read_src(&st, src1, i, UseCx::Alu, opts, sink, marks);
                read_src(&st, src2, i, UseCx::Alu, opts, sink, marks);
                st.push(Av::inst(i));
            }
            StInst::AluImm { op, src1, imm } => {
                let a = read_src(&st, src1, i, UseCx::Alu, opts, sink, marks);
                let r = if op == AluOp::Add {
                    addi_result(i, &a, imm as i64)
                } else {
                    Av::inst(i)
                };
                st.push(r);
            }
            StInst::Li { imm } => st.push(Av::cst(i, imm)),
            StInst::Load { base, offset, .. } => {
                let ba = read_src(&st, base, i, UseCx::Base, opts, sink, marks);
                let v = load_result(i, &st.frame, &ba, offset, marks);
                st.push(v);
            }
            StInst::Store {
                value,
                base,
                offset,
                ..
            } => {
                let va = read_src(&st, value, i, UseCx::StoreValue, opts, sink, marks);
                let ba = read_src(&st, base, i, UseCx::Base, opts, sink, marks);
                store_effect(&mut st.frame, &ba, offset, va);
                st.push(Av::hole(i));
            }
            StInst::Branch { src1, src2, .. } => {
                read_src(&st, src1, i, UseCx::Branch, opts, sink, marks);
                read_src(&st, src2, i, UseCx::Branch, opts, sink, marks);
                st.push(Av::hole(i));
            }
            StInst::Jump { .. } | StInst::Nop => st.push(Av::hole(i)),
            StInst::SpAddi { imm } => {
                mark_av(&st.sp, marks);
                st.sp = addi_result(i, &st.sp.clone(), imm as i64);
                st.push(Av::hole(i));
            }
            StInst::Call { .. } => {
                // Everything live escapes into the callee; afterwards the
                // resume point sees the callee's epilogue in the ring:
                // its `jr` slot (a hole) at distance 1 and the return
                // value at distance 2. SP and the frame survive.
                st.mark_all(marks);
                let mut ring = vec![Av::opaque(i); DEPTH];
                ring[0] = Av::hole(i);
                ring[1] = Av::retval(i);
                st.ring = ring;
            }
            StInst::Mv { src } => {
                let a = read_src(&st, src, i, UseCx::Mv, opts, sink, marks);
                st.push(Av {
                    origins: a.origins.clone(),
                    kind: a.kind,
                    writers: Some(vec![i]),
                });
            }
            StInst::JumpReg { src } => {
                read_src(&st, src, i, UseCx::JrTarget, opts, sink, marks);
                if opts.conventions && !func.is_machine_entry {
                    let sp_ok = st.sp.origins.is_none() || st.sp.is_entry_value(SP_TOK);
                    if !sp_ok {
                        sink.error(
                            "E-SP",
                            Some(i),
                            Some("sp".to_string()),
                            "returns without restoring sp to its entry value \
                             (missing spaddi +frame)"
                                .to_string(),
                        );
                    }
                }
                st.mark_all(marks);
                return Vec::new();
            }
            StInst::Halt { src } => {
                read_src(&st, src, i, UseCx::Halt, opts, sink, marks);
                st.mark_all(marks);
                return Vec::new();
            }
        }
    }
    block.succs.iter().map(|&s| (s, st.clone())).collect()
}

/// Verifies an assembled STRAIGHT program. See the crate docs for the
/// property proved and the diagnostic codes.
pub fn verify_straight(prog: &StProgram, opts: &Options) -> Report {
    let len = prog.insts.len() as u32;
    let flow = |i: u32| flow_of(&prog.insts[i as usize]);
    let (funcs, issues) = build_funcs(len, prog.entry, &prog.labels, &flow);
    let mut diags = Vec::new();
    {
        let mut cfg_sink = Sink::new("<cfg>");
        for (at, msg) in issues {
            cfg_sink.error("E-CFG", Some(at), None, msg);
        }
        diags.extend(cfg_sink.into_diags());
    }
    let mut marks = Marks::new(len as usize);
    let mut covered = vec![false; len as usize];
    let mut functions = Vec::new();
    let mut fn_sinks = Vec::new();
    for func in &funcs {
        for b in &func.blocks {
            for i in b.start..b.end {
                covered[i as usize] = true;
            }
        }
        let entry_state = if func.is_machine_entry {
            StState::machine_entry()
        } else {
            StState::convention_entry()
        };
        let mut sink = Sink::new(&func.name);
        fixpoint(
            func,
            entry_state,
            &mut marks,
            &mut sink,
            |b, st, marks, sink| transfer(prog, func, b, st, marks, sink, opts),
        );
        fn_sinks.push(sink);
    }
    for (func, mut sink) in funcs.iter().zip(fn_sinks) {
        let classify = |i: u32| match prog.insts[i as usize] {
            StInst::Mv { .. } => Some(LintClass::Relay),
            StInst::Li { .. } => Some(LintClass::Fix),
            _ => None,
        };
        let (dead_relays, redundant_fixes) = lint_function(func, &marks, &mut sink, &classify);
        functions.push(FnSummary {
            name: func.name.clone(),
            entry: func.entry,
            insts: func.inst_count(),
            dead_relays,
            redundant_fixes,
        });
        diags.extend(sink.into_diags());
    }
    let unreachable = lint_unreachable(&covered, &mut diags);
    Report {
        isa: "straight",
        diags,
        functions,
        unreachable,
        covered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_baselines::straight::asm::assemble;

    fn verify_src(src: &str) -> Report {
        let prog = assemble(src).expect("test program assembles");
        verify_straight(&prog, &Options::default())
    }

    #[test]
    fn straight_line_program_is_clean() {
        let r = verify_src(
            "li 1
             li 2
             add [1], [2]
             halt [1]",
        );
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn hole_read_is_flagged() {
        // [1] right after a nop names the nop's value-less slot.
        let r = verify_src(
            "li 1
             nop
             halt [1]",
        );
        assert!(r.diags.iter().any(|d| d.code == "E-HOLE"), "{}", r.render());
    }

    #[test]
    fn unbalanced_convergence_distances_are_flagged() {
        // The taken arm produces one value, the fall-through arm two:
        // at the join, [1] resolves differently per path — the exact
        // static-reach violation STRAIGHT compilers must pad away.
        let r = verify_src(
            "_start:
             call f
             halt [2]
             f:
             bne [2], zero, .two
             mv [2]
             j .join
             .two:
             mv [3]
             mv [3]
             .join:
             mv [2]
             halt [1]",
        );
        assert!(r.diags.iter().any(|d| d.code == "E-PATH"), "{}", r.render());
    }

    #[test]
    fn missing_sp_restore_is_flagged() {
        let r = verify_src(
            "_start:
             call f
             halt [2]
             f:
             spaddi -16
             mv zero
             ret [2]",
        );
        assert!(r.diags.iter().any(|d| d.code == "E-SP"), "{}", r.render());
    }

    #[test]
    fn balanced_call_and_frame_roundtrip_is_clean() {
        // A callee that spills its return address, rebalances sp, and
        // returns through the reloaded value.
        let r = verify_src(
            "_start:
             call f
             halt [2]
             f:
             spaddi -16
             sd [2], 0(sp)
             li 7
             ld 0(sp)
             spaddi 16
             mv [3]
             ret [3]",
        );
        assert!(r.is_clean(), "{}", r.render());
    }
}
