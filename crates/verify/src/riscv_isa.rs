//! The RISC frontend for [`verify_riscv`].
//!
//! Registers are named, so there is no distance arithmetic to verify —
//! the properties here are def-before-use and the ABI obligations the
//! compiler's register allocator relies on. The abstract state is one
//! [`Av`] per logical register plus the symbolic frame.
//!
//! Convention model (mirrors `ch-compiler`'s RISC backend): `ra` holds
//! the return address, `sp` the caller's stack pointer (restored at
//! return, E-SP), the `a`/`fa` registers hold arguments; the ABI
//! callee-saved set (`s0`–`s11`, `fs0`/`fs1`, `fs2`–`fs11`) must hold
//! its entry values at every return (E-CALLEE) and may be read before
//! being written only to save it (E-CSREAD). The backend treats `gp`,
//! `tp`, and the `t` registers as plain caller-saved temporaries, so
//! they are *uninitialized* at entry — the interpreter zero-fills
//! them, which is exactly the silent-default gap this verifier closes.

use crate::cfg::{build_funcs, Flow, Func};
use crate::check::{
    addi_result, check_read, load_result, mark_av, store_effect, EntryKind, Options, UseCx,
};
use crate::domain::{join_frames, Av, Frame, Kind, Marks};
use crate::engine::{fixpoint, AbsState, Sink};
use crate::{lint_function, lint_unreachable, FnSummary, LintClass, Report};
use ch_baselines::riscv::{Reg, RvInst, RvProgram, NUM_REGS};
use ch_common::exec::AluOp;

/// The ABI callee-saved registers: `s0`–`s11` plus the fp `fs` set.
const CALLEE_SAVED: [u8; 24] = [
    8, 9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, // s0-s11
    40, 41, 50, 51, 52, 53, 54, 55, 56, 57, 58, 59, // fs0-fs11
];

fn entry_kind(t: u16) -> EntryKind {
    if t == 1 {
        EntryKind::RetAddr
    } else if t < NUM_REGS as u16 && CALLEE_SAVED.contains(&(t as u8)) {
        EntryKind::CalleeSaved
    } else {
        EntryKind::Plain
    }
}

fn describe(t: u16) -> String {
    format!("entry {}", Reg(t as u8))
}

/// Registers at entry that hold caller-meaningful values: `ra`, `sp`,
/// the argument registers, and the callee-saved set. Everything else
/// (temporaries, `gp`/`tp`, scratch) is uninitialized.
fn entry_value(r: u8) -> Option<Av> {
    match r {
        1 => Some(Av {
            kind: Kind::RetAddr,
            ..Av::entry(1)
        }),
        2 => Some(Av::entry(2)),
        10..=17 | 42..=49 => Some(Av::entry(r as u16)),
        _ if CALLEE_SAVED.contains(&r) => Some(Av::entry(r as u16)),
        _ => None,
    }
}

/// One abstract value per logical register, plus the frame.
#[derive(Clone)]
struct RvState {
    regs: Vec<Av>,
    frame: Frame,
}

impl RvState {
    fn mark_all(&self, marks: &mut Marks) {
        for av in &self.regs {
            mark_av(av, marks);
        }
        for av in self.frame.values() {
            mark_av(av, marks);
        }
    }

    fn convention_entry() -> RvState {
        let regs = (0..NUM_REGS)
            .map(|r| entry_value(r).unwrap_or_else(Av::uninit))
            .collect();
        RvState {
            regs,
            frame: Frame::new(),
        }
    }

    fn machine_entry() -> RvState {
        let mut regs: Vec<Av> = (0..NUM_REGS).map(|_| Av::uninit()).collect();
        regs[Reg::SP.0 as usize] = Av::reset();
        RvState {
            regs,
            frame: Frame::new(),
        }
    }
}

impl AbsState for RvState {
    fn join_with(&mut self, other: &Self, marks: &mut Marks) -> bool {
        let mut changed = false;
        for (av, oav) in self.regs.iter_mut().zip(&other.regs) {
            changed |= av.join_with(oav, marks);
        }
        changed |= join_frames(&mut self.frame, &other.frame, marks);
        changed
    }
}

fn flow_of(inst: &RvInst) -> Flow {
    match *inst {
        RvInst::Branch { target, .. } => Flow::Branch(target),
        RvInst::Jump { target } => Flow::Jump(target),
        RvInst::Call { target, .. } => Flow::Call(target),
        RvInst::CallReg { .. } => Flow::CallInd,
        RvInst::JumpReg { .. } => Flow::Ret,
        RvInst::Halt { .. } => Flow::Halt,
        _ => Flow::Fall,
    }
}

#[allow(clippy::too_many_arguments)]
fn read_reg(
    st: &RvState,
    r: Reg,
    i: u32,
    cx: UseCx,
    opts: &Options,
    sink: &mut Sink,
    marks: &mut Marks,
) -> Av {
    if r.is_zero() {
        return Av::zero();
    }
    if r.0 >= NUM_REGS {
        sink.error(
            "E-DIST",
            Some(i),
            Some(r.to_string()),
            format!("register number {} out of range", r.0),
        );
        return Av::inst(i);
    }
    let av = st.regs[r.0 as usize].clone();
    mark_av(&av, marks);
    check_read(
        &av,
        i,
        &r.to_string(),
        cx,
        opts,
        sink,
        &entry_kind,
        &describe,
    );
    av
}

fn write_reg(st: &mut RvState, r: Reg, av: Av) {
    if !r.is_zero() && r.0 < NUM_REGS {
        st.regs[r.0 as usize] = av;
    }
}

/// Effect of a call at `i`: every caller-saved register is clobbered,
/// the return-value registers hold the result, and `sp`, the
/// callee-saved set, and the frame survive.
fn apply_call(st: &mut RvState, i: u32, marks: &mut Marks) {
    st.mark_all(marks);
    for r in 1..NUM_REGS {
        if r == Reg::SP.0 || CALLEE_SAVED.contains(&r) {
            continue;
        }
        st.regs[r as usize] = Av::opaque(i);
    }
    st.regs[10] = Av::retval(i); // a0
    st.regs[42] = Av::retval(i); // fa0
}

fn transfer(
    prog: &RvProgram,
    func: &Func,
    b: usize,
    mut st: RvState,
    marks: &mut Marks,
    sink: &mut Sink,
    opts: &Options,
) -> Vec<(usize, RvState)> {
    let block = &func.blocks[b];
    for i in block.start..block.end {
        let inst = &prog.insts[i as usize];
        match *inst {
            RvInst::Alu { rd, rs1, rs2, .. } => {
                read_reg(&st, rs1, i, UseCx::Alu, opts, sink, marks);
                read_reg(&st, rs2, i, UseCx::Alu, opts, sink, marks);
                write_reg(&mut st, rd, Av::inst(i));
            }
            RvInst::AluImm { op, rd, rs1, imm } => {
                let a = read_reg(&st, rs1, i, UseCx::Alu, opts, sink, marks);
                let r = if op == AluOp::Add {
                    addi_result(i, &a, imm as i64)
                } else {
                    Av::inst(i)
                };
                write_reg(&mut st, rd, r);
            }
            RvInst::Li { rd, imm } => write_reg(&mut st, rd, Av::cst(i, imm)),
            RvInst::Load {
                rd, base, offset, ..
            } => {
                let ba = read_reg(&st, base, i, UseCx::Base, opts, sink, marks);
                let v = load_result(i, &st.frame, &ba, offset, marks);
                write_reg(&mut st, rd, v);
            }
            RvInst::Store {
                rs, base, offset, ..
            } => {
                let va = read_reg(&st, rs, i, UseCx::StoreValue, opts, sink, marks);
                let ba = read_reg(&st, base, i, UseCx::Base, opts, sink, marks);
                store_effect(&mut st.frame, &ba, offset, va);
            }
            RvInst::Branch { rs1, rs2, .. } => {
                read_reg(&st, rs1, i, UseCx::Branch, opts, sink, marks);
                read_reg(&st, rs2, i, UseCx::Branch, opts, sink, marks);
            }
            RvInst::Jump { .. } | RvInst::Nop => {}
            RvInst::Call { rd, .. } => {
                apply_call(&mut st, i, marks);
                write_reg(
                    &mut st,
                    rd,
                    Av {
                        kind: Kind::RetAddr,
                        ..Av::inst(i)
                    },
                );
            }
            RvInst::CallReg { rd, rs } => {
                read_reg(&st, rs, i, UseCx::CallTarget, opts, sink, marks);
                apply_call(&mut st, i, marks);
                write_reg(
                    &mut st,
                    rd,
                    Av {
                        kind: Kind::RetAddr,
                        ..Av::inst(i)
                    },
                );
            }
            RvInst::Mv { rd, rs } => {
                let a = read_reg(&st, rs, i, UseCx::Mv, opts, sink, marks);
                write_reg(
                    &mut st,
                    rd,
                    Av {
                        origins: a.origins.clone(),
                        kind: a.kind,
                        writers: Some(vec![i]),
                    },
                );
            }
            RvInst::JumpReg { rs } => {
                read_reg(&st, rs, i, UseCx::JrTarget, opts, sink, marks);
                if opts.conventions && !func.is_machine_entry {
                    check_return_conventions(&st, i, sink);
                }
                st.mark_all(marks);
                return Vec::new();
            }
            RvInst::Halt { rs } => {
                read_reg(&st, rs, i, UseCx::Halt, opts, sink, marks);
                st.mark_all(marks);
                return Vec::new();
            }
        }
    }
    block.succs.iter().map(|&s| (s, st.clone())).collect()
}

/// At a return: `sp` must hold the caller's stack pointer again, and
/// every callee-saved register must hold its entry value.
fn check_return_conventions(st: &RvState, i: u32, sink: &mut Sink) {
    let sp = &st.regs[Reg::SP.0 as usize];
    if sp.origins.is_some() && !sp.is_entry_value(Reg::SP.0 as u16) {
        sink.error(
            "E-SP",
            Some(i),
            Some("x2".to_string()),
            "returns without restoring sp to its entry value (stack not rebalanced)".to_string(),
        );
    }
    for &r in &CALLEE_SAVED {
        let av = &st.regs[r as usize];
        if av.origins.is_some() && !av.is_entry_value(r as u16) {
            sink.error(
                "E-CALLEE",
                Some(i),
                Some(Reg(r).to_string()),
                format!(
                    "callee-saved {} does not hold its entry value at return",
                    Reg(r)
                ),
            );
        }
    }
}

/// Verifies an assembled RISC program. See the crate docs for the
/// property proved and the diagnostic codes.
pub fn verify_riscv(prog: &RvProgram, opts: &Options) -> Report {
    let len = prog.insts.len() as u32;
    let flow = |i: u32| flow_of(&prog.insts[i as usize]);
    let (funcs, issues) = build_funcs(len, prog.entry, &prog.labels, &flow);
    let mut diags = Vec::new();
    {
        let mut cfg_sink = Sink::new("<cfg>");
        for (at, msg) in issues {
            cfg_sink.error("E-CFG", Some(at), None, msg);
        }
        diags.extend(cfg_sink.into_diags());
    }
    let mut marks = Marks::new(len as usize);
    let mut covered = vec![false; len as usize];
    let mut functions = Vec::new();
    let mut fn_sinks = Vec::new();
    for func in &funcs {
        for b in &func.blocks {
            for i in b.start..b.end {
                covered[i as usize] = true;
            }
        }
        let entry_state = if func.is_machine_entry {
            RvState::machine_entry()
        } else {
            RvState::convention_entry()
        };
        let mut sink = Sink::new(&func.name);
        fixpoint(
            func,
            entry_state,
            &mut marks,
            &mut sink,
            |b, st, marks, sink| transfer(prog, func, b, st, marks, sink, opts),
        );
        fn_sinks.push(sink);
    }
    for (func, mut sink) in funcs.iter().zip(fn_sinks) {
        let classify = |i: u32| match prog.insts[i as usize] {
            RvInst::Mv { .. } => Some(LintClass::Relay),
            RvInst::Li { .. } => Some(LintClass::Fix),
            _ => None,
        };
        let (dead_relays, redundant_fixes) = lint_function(func, &marks, &mut sink, &classify);
        functions.push(FnSummary {
            name: func.name.clone(),
            entry: func.entry,
            insts: func.inst_count(),
            dead_relays,
            redundant_fixes,
        });
        diags.extend(sink.into_diags());
    }
    let unreachable = lint_unreachable(&covered, &mut diags);
    Report {
        isa: "riscv",
        diags,
        functions,
        unreachable,
        covered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_baselines::riscv::asm::assemble;

    fn verify_src(src: &str) -> Report {
        let prog = assemble(src).expect("test program assembles");
        verify_riscv(&prog, &Options::default())
    }

    #[test]
    fn straight_line_program_is_clean() {
        let r = verify_src(
            "li t0, 1
             addi t1, t0, 2
             add a0, t0, t1
             halt a0",
        );
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn use_before_def_is_flagged() {
        let r = verify_src(
            "add a0, t0, t1
             halt a0",
        );
        assert!(
            r.diags.iter().any(|d| d.code == "E-UNINIT"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn clobbered_callee_saved_is_flagged() {
        let r = verify_src(
            "_start:
             call ra, f
             halt a0
             f:
             li s0, 3
             mv a0, s0
             ret ra",
        );
        assert!(
            r.diags.iter().any(|d| d.code == "E-CALLEE"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn save_restore_of_callee_saved_is_clean() {
        let r = verify_src(
            "_start:
             call ra, f
             halt a0
             f:
             addi sp, sp, -16
             sd s0, 0(sp)
             li s0, 3
             mv a0, s0
             ld s0, 0(sp)
             addi sp, sp, 16
             ret ra",
        );
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn caller_saved_value_does_not_survive_calls() {
        let r = verify_src(
            "_start:
             call ra, f
             halt a0
             f:
             addi sp, sp, -16
             sd ra, 0(sp)
             li t0, 1
             call ra, g
             mv a0, t0
             ld ra, 0(sp)
             addi sp, sp, 16
             ret ra
             g:
             li a0, 2
             ret ra",
        );
        assert!(
            r.diags.iter().any(|d| d.code == "E-CLOBBER"),
            "{}",
            r.render()
        );
    }
}
