//! `ch-verify` — verify an assembly file from the command line.
//!
//! ```text
//! ch-verify --isa clockhands|straight|riscv [--no-conventions] FILE.s
//! ```
//!
//! Prints every finding plus a per-function lint summary; exits 1 if
//! the program has errors (warnings alone exit 0), 2 on usage or
//! assembly problems.

use ch_verify::{verify_clockhands, verify_riscv, verify_straight, Options, Report};
use std::process::ExitCode;

const USAGE: &str = "usage: ch-verify --isa clockhands|straight|riscv [--no-conventions] FILE.s";

fn run() -> Result<Report, String> {
    let mut isa: Option<String> = None;
    let mut file: Option<String> = None;
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--isa" => {
                isa = Some(args.next().ok_or_else(|| USAGE.to_string())?);
            }
            "--no-conventions" => opts.conventions = false,
            "-h" | "--help" => return Err(USAGE.to_string()),
            _ if file.is_none() => file = Some(a),
            _ => return Err(format!("unexpected argument `{a}`\n{USAGE}")),
        }
    }
    let isa = isa.ok_or_else(|| USAGE.to_string())?;
    let file = file.ok_or_else(|| USAGE.to_string())?;
    let src = std::fs::read_to_string(&file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let report = match isa.as_str() {
        "clockhands" | "ch" => {
            let prog = clockhands::asm::assemble(&src).map_err(|e| e.to_string())?;
            verify_clockhands(&prog, &opts)
        }
        "straight" | "st" => {
            let prog = ch_baselines::straight::asm::assemble(&src).map_err(|e| e.to_string())?;
            verify_straight(&prog, &opts)
        }
        "riscv" | "rv" => {
            let prog = ch_baselines::riscv::asm::assemble(&src).map_err(|e| e.to_string())?;
            verify_riscv(&prog, &opts)
        }
        other => return Err(format!("unknown ISA `{other}`\n{USAGE}")),
    };
    Ok(report)
}

fn main() -> ExitCode {
    match run() {
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
        Ok(report) => {
            print!("{}", report.render());
            for f in &report.functions {
                println!(
                    "fn {} @{}: {} inst(s), {} dead relay(s), {} redundant fix(es)",
                    f.name, f.entry, f.insts, f.dead_relays, f.redundant_fixes
                );
            }
            let errors = report.errors().count();
            let warnings = report.warnings().count();
            println!(
                "{}: {} error(s), {} warning(s), {} unreachable instruction(s)",
                report.isa, errors, warnings, report.unreachable
            );
            if errors > 0 {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
    }
}
