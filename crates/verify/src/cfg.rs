//! Control-flow graph construction and function partitioning, generic
//! over the three ISAs via a per-instruction [`Flow`] summary.
//!
//! Functions are discovered from the program entry plus every direct
//! call target; each function's body is the set of instructions
//! reachable from its root through fall-through, jump, and branch edges
//! (calls fall through to their return point — the callee is summarised,
//! not inlined). Bodies are split into basic blocks at branch targets
//! and after control transfers.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// How one instruction transfers control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Falls through to the next instruction.
    Fall,
    /// Unconditionally jumps to the target index.
    Jump(u32),
    /// Conditionally jumps to the target index, else falls through.
    Branch(u32),
    /// Calls the function at the target index, then falls through.
    Call(u32),
    /// Calls through a register, then falls through.
    CallInd,
    /// Returns (indirect jump); terminal within the function.
    Ret,
    /// Stops the machine; terminal.
    Halt,
}

/// A basic block: the half-open instruction range `[start, end)` plus
/// successor block ids within the same function.
#[derive(Debug, Clone)]
pub struct Block {
    /// First instruction index.
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
    /// Successor blocks (indices into [`Func::blocks`]).
    pub succs: Vec<usize>,
}

/// One discovered function.
#[derive(Debug, Clone)]
pub struct Func {
    /// Best-effort name (a label at the root, else `fn@<index>`).
    pub name: String,
    /// Root instruction index.
    pub entry: u32,
    /// Whether this is the machine entry point (reset state) rather
    /// than a called function (convention entry state).
    pub is_machine_entry: bool,
    /// Basic blocks in ascending start order.
    pub blocks: Vec<Block>,
    /// Index into `blocks` of the block containing `entry`.
    pub entry_block: usize,
}

impl Func {
    /// Total number of instructions in the function body.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| (b.end - b.start) as usize).sum()
    }
}

/// A control-flow problem found while building the graph (escaping
/// edges, out-of-range targets). Reported as `(inst, message)`.
pub type CfgIssue = (u32, String);

fn successors(i: u32, flow: Flow, len: u32) -> Vec<u32> {
    match flow {
        Flow::Fall | Flow::Call(_) | Flow::CallInd => {
            if i + 1 < len {
                vec![i + 1]
            } else {
                Vec::new()
            }
        }
        Flow::Jump(t) => vec![t],
        Flow::Branch(t) => {
            let mut s = vec![t];
            if i + 1 < len {
                s.push(i + 1);
            }
            s
        }
        Flow::Ret | Flow::Halt => Vec::new(),
    }
}

/// Discovers all functions of a program.
///
/// `flow(i)` describes instruction `i`; `labels` provides names. Returns
/// the functions plus any structural issues found.
pub fn build_funcs(
    len: u32,
    entry: u32,
    labels: &BTreeMap<String, u32>,
    flow: &dyn Fn(u32) -> Flow,
) -> (Vec<Func>, Vec<CfgIssue>) {
    let mut issues: Vec<CfgIssue> = Vec::new();
    let mut roots: BTreeSet<u32> = BTreeSet::new();
    if entry < len {
        roots.insert(entry);
    }
    for i in 0..len {
        match flow(i) {
            Flow::Call(t) if t < len => {
                roots.insert(t);
            }
            Flow::Call(t) => issues.push((i, format!("call target {t} out of range"))),
            Flow::Jump(t) | Flow::Branch(t) if t >= len => {
                issues.push((i, format!("branch target {t} out of range")));
            }
            _ => {}
        }
    }

    // Reverse label lookup, preferring function-looking names (no dot).
    let mut names: BTreeMap<u32, String> = BTreeMap::new();
    for (name, &at) in labels {
        let better = match names.get(&at) {
            None => true,
            Some(cur) => cur.starts_with('.') && !name.starts_with('.'),
        };
        if better {
            names.insert(at, name.clone());
        }
    }

    let mut funcs = Vec::new();
    for &root in &roots {
        // Reachable body (intra-function edges only).
        let mut body: BTreeSet<u32> = BTreeSet::new();
        let mut queue: VecDeque<u32> = VecDeque::new();
        body.insert(root);
        queue.push_back(root);
        while let Some(i) = queue.pop_front() {
            let f = flow(i);
            if matches!(f, Flow::Fall | Flow::Call(_) | Flow::CallInd) && i + 1 >= len {
                issues.push((i, "control flow falls off the end of the program".into()));
            }
            for s in successors(i, f, len) {
                if s < len && body.insert(s) {
                    queue.push_back(s);
                }
            }
        }

        // Leaders: the root, every in-body branch/jump target, and every
        // instruction following a control transfer.
        let mut leaders: BTreeSet<u32> = BTreeSet::new();
        leaders.insert(root);
        for &i in &body {
            match flow(i) {
                Flow::Jump(t) | Flow::Branch(t) => {
                    if body.contains(&t) {
                        leaders.insert(t);
                    }
                    if body.contains(&(i + 1)) {
                        leaders.insert(i + 1);
                    }
                }
                Flow::Call(_) | Flow::CallInd | Flow::Ret | Flow::Halt => {
                    if body.contains(&(i + 1)) {
                        leaders.insert(i + 1);
                    }
                }
                Flow::Fall => {}
            }
        }

        // Contiguous runs of body instructions, split at leaders.
        let mut blocks: Vec<Block> = Vec::new();
        let mut starts: BTreeMap<u32, usize> = BTreeMap::new();
        let mut iter = body.iter().copied().peekable();
        while let Some(start) = iter.next() {
            let mut end = start + 1;
            while let Some(&next) = iter.peek() {
                if next == end && !leaders.contains(&next) {
                    iter.next();
                    end += 1;
                } else {
                    break;
                }
            }
            starts.insert(start, blocks.len());
            blocks.push(Block {
                start,
                end,
                succs: Vec::new(),
            });
        }
        // Successor edges from each block's last instruction.
        for b in blocks.iter_mut() {
            let last = b.end - 1;
            let mut succs = Vec::new();
            for s in successors(last, flow(last), len) {
                match starts.get(&s) {
                    Some(&sb) => succs.push(sb),
                    None => {
                        issues.push((last, format!("control flow escapes function at target {s}")))
                    }
                }
            }
            b.succs = succs;
        }

        let name = names
            .get(&root)
            .cloned()
            .unwrap_or_else(|| format!("fn@{root}"));
        let entry_block = starts[&root];
        funcs.push(Func {
            name,
            entry: root,
            is_machine_entry: root == entry,
            blocks,
            entry_block,
        });
    }
    (funcs, issues)
}

#[cfg(test)]
mod tests {
    use super::*;

    // A tiny synthetic program:
    //   0: call 4      (_start)
    //   1: halt
    //   2: nop         (dead)
    //   3: nop         (dead)
    //   4: branch 7    (f)
    //   5: fall
    //   6: jump 8
    //   7: fall
    //   8: ret
    fn flow(i: u32) -> Flow {
        match i {
            0 => Flow::Call(4),
            1 => Flow::Halt,
            4 => Flow::Branch(7),
            6 => Flow::Jump(8),
            8 => Flow::Ret,
            _ => Flow::Fall,
        }
    }

    #[test]
    fn partitions_into_two_functions() {
        let mut labels = BTreeMap::new();
        labels.insert("f".to_string(), 4);
        labels.insert(".f.then".to_string(), 7);
        let (funcs, issues) = build_funcs(9, 0, &labels, &flow);
        assert!(issues.is_empty(), "{issues:?}");
        assert_eq!(funcs.len(), 2);
        let start = &funcs[0];
        assert!(start.is_machine_entry);
        assert_eq!(start.inst_count(), 2); // 0..2; dead nops excluded
        let f = &funcs[1];
        assert_eq!(f.name, "f");
        assert!(!f.is_machine_entry);
        // Blocks: [4,5), [5,7), [7,8), [8,9).
        assert_eq!(f.blocks.len(), 4);
        let diamond = &f.blocks[0];
        assert_eq!(diamond.succs.len(), 2);
        // Both arms converge on the ret block.
        let ret_block = f.blocks.len() - 1;
        assert!(f.blocks[1].succs.contains(&ret_block));
        assert!(f.blocks[2].succs.contains(&ret_block));
    }

    #[test]
    fn out_of_range_target_is_an_issue() {
        let (_, issues) = build_funcs(2, 0, &BTreeMap::new(), &|i| match i {
            0 => Flow::Jump(9),
            _ => Flow::Halt,
        });
        assert!(issues.iter().any(|(at, m)| *at == 0 && m.contains("9")));
    }
}
