//! The meet-over-all-paths worklist engine and the diagnostic sink.

use crate::cfg::Func;
use crate::domain::Marks;
use ch_common::error::{Diagnostic, Severity};
use std::collections::{BTreeSet, VecDeque};

/// A joinable abstract state (one per basic block entry).
pub trait AbsState: Clone {
    /// Joins `other` into `self`; returns whether `self` changed.
    fn join_with(&mut self, other: &Self, marks: &mut Marks) -> bool;
}

/// Iteration guard: a function whose fixpoint has not converged after
/// this many block transfers is reported instead of looping forever.
const MAX_TRANSFERS: usize = 100_000;

/// Runs `transfer` to a fixpoint over `func`'s blocks, starting from
/// `entry_state` at the entry block. `transfer(block, in_state, marks,
/// sink)` returns the out-states per successor block id (and may emit
/// diagnostics — the sink deduplicates across re-runs). Returns the
/// final per-block in-states (`None` = block unreachable).
pub fn fixpoint<S: AbsState>(
    func: &Func,
    entry_state: S,
    marks: &mut Marks,
    sink: &mut Sink,
    mut transfer: impl FnMut(usize, S, &mut Marks, &mut Sink) -> Vec<(usize, S)>,
) -> Vec<Option<S>> {
    let n = func.blocks.len();
    let mut ins: Vec<Option<S>> = vec![None; n];
    ins[func.entry_block] = Some(entry_state);
    let mut queued = vec![false; n];
    let mut work: VecDeque<usize> = VecDeque::new();
    work.push_back(func.entry_block);
    queued[func.entry_block] = true;
    let mut transfers = 0usize;
    while let Some(b) = work.pop_front() {
        queued[b] = false;
        transfers += 1;
        if transfers > MAX_TRANSFERS {
            sink.error(
                "E-FIXPOINT",
                Some(func.blocks[b].start),
                None,
                "dataflow fixpoint did not converge (internal limit)".to_string(),
            );
            break;
        }
        let state = ins[b].clone().expect("queued block has a state");
        for (succ, out) in transfer(b, state, marks, sink) {
            let changed = match &mut ins[succ] {
                Some(cur) => cur.join_with(&out, marks),
                slot @ None => {
                    *slot = Some(out);
                    true
                }
            };
            if changed && !queued[succ] {
                queued[succ] = true;
                work.push_back(succ);
            }
        }
    }
    ins
}

/// Collects deduplicated diagnostics for one function.
///
/// Transfer functions re-run until the fixpoint, so the same read is
/// checked many times; findings are keyed by (instruction, code,
/// operand) and emitted once, sorted by instruction index.
pub struct Sink {
    function: String,
    seen: BTreeSet<(u32, &'static str, String)>,
    diags: Vec<Diagnostic>,
}

impl Sink {
    /// A sink for diagnostics in `function`.
    pub fn new(function: &str) -> Self {
        Sink {
            function: function.to_string(),
            seen: BTreeSet::new(),
            diags: Vec::new(),
        }
    }

    /// Records an error at instruction `inst` on `operand`.
    pub fn error(
        &mut self,
        code: &'static str,
        inst: Option<u32>,
        operand: Option<String>,
        message: String,
    ) {
        self.push(Severity::Error, code, inst, operand, message);
    }

    /// Records a warning.
    pub fn warning(
        &mut self,
        code: &'static str,
        inst: Option<u32>,
        operand: Option<String>,
        message: String,
    ) {
        self.push(Severity::Warning, code, inst, operand, message);
    }

    fn push(
        &mut self,
        severity: Severity,
        code: &'static str,
        inst: Option<u32>,
        operand: Option<String>,
        message: String,
    ) {
        let key = (
            inst.unwrap_or(u32::MAX),
            code,
            operand.clone().unwrap_or_default(),
        );
        if !self.seen.insert(key) {
            return;
        }
        self.diags.push(Diagnostic {
            severity,
            code,
            function: self.function.clone(),
            inst,
            operand,
            message,
        });
    }

    /// All findings, sorted by instruction index then code.
    pub fn into_diags(mut self) -> Vec<Diagnostic> {
        self.diags
            .sort_by_key(|d| (d.inst.unwrap_or(u32::MAX), d.code));
        self.diags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{Block, Func};

    #[derive(Clone, PartialEq)]
    struct Count(u32);
    impl AbsState for Count {
        fn join_with(&mut self, other: &Self, _marks: &mut Marks) -> bool {
            // Join = max; saturates at 10 so the loop below converges.
            let joined = self.0.max(other.0).min(10);
            let changed = joined != self.0;
            self.0 = joined;
            changed
        }
    }

    #[test]
    fn loop_reaches_fixpoint() {
        // Two blocks: entry -> loop, loop -> loop (self edge).
        let func = Func {
            name: "f".into(),
            entry: 0,
            is_machine_entry: true,
            blocks: vec![
                Block {
                    start: 0,
                    end: 1,
                    succs: vec![1],
                },
                Block {
                    start: 1,
                    end: 2,
                    succs: vec![1],
                },
            ],
            entry_block: 0,
        };
        let mut marks = Marks::new(2);
        let mut sink = Sink::new("f");
        let ins = fixpoint(&func, Count(0), &mut marks, &mut sink, |_b, st, _m, _s| {
            vec![(1, Count((st.0 + 1).min(10)))]
        });
        assert_eq!(ins[1].as_ref().map(|s| s.0), Some(10));
        assert!(sink.into_diags().is_empty());
    }

    #[test]
    fn sink_dedupes_repeated_findings() {
        let mut sink = Sink::new("f");
        for _ in 0..5 {
            sink.error("E-UNINIT", Some(3), Some("t[2]".into()), "msg".into());
        }
        sink.error("E-UNINIT", Some(3), Some("t[1]".into()), "msg".into());
        assert_eq!(sink.into_diags().len(), 2);
    }
}
