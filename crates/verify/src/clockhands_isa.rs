//! The Clockhands frontend: abstract state, transfer function, and
//! convention model for [`verify_clockhands`].
//!
//! The abstract state is the youngest 16 writes of each hand (exactly
//! the window a `(hand, distance)` source can name) plus the symbolic
//! frame. A write shifts its hand's window by one — which is the whole
//! point: a spurious or missing write on one path shifts that path's
//! window relative to the other, and the join then exposes the
//! misalignment when a shifted *entry-anchored* value is read (E-PATH)
//! or an uninitialized tail slot scrolls into reach (E-UNINIT).
//!
//! Convention model (mirrors `ch-compiler`'s Clockhands backend): a
//! called function sees its caller's `s` hand — `s[0]` holds the return
//! address, deeper slots the arguments and caller stack pointer — and
//! owns `v[0..8)` as callee-saved: each must hold its entry value again
//! at every `jr` (E-CALLEE), and may be read before being written only
//! to save it (E-CSREAD). `t`/`u` entry slots hold caller leftovers
//! with no defined meaning, so reading them is an error (E-CLOBBER).

use crate::cfg::{build_funcs, Flow, Func};
use crate::check::{
    addi_result, check_read, load_result, mark_av, store_effect, EntryKind, Options, UseCx,
};
use crate::domain::{join_frames, Av, Frame, Kind, Marks, ENTRY_SITE};
use crate::engine::{fixpoint, AbsState, Sink};
use crate::{lint_function, lint_unreachable, FnSummary, LintClass, Report};
use ch_common::exec::AluOp;
use clockhands::hand::{Hand, MAX_DISTANCE, NUM_HANDS};
use clockhands::inst::{Inst, Src};
use clockhands::program::Program;

const DEPTH: usize = MAX_DISTANCE as usize;
/// Callee-saved window on the `v` hand: the backend saves/restores
/// exactly `v[0..8)` around any function that writes `v`.
const V_SAVED: usize = 8;

/// Entry token for `hand[d]` at function entry.
fn tok(hand: Hand, d: usize) -> u16 {
    (hand.index() * DEPTH + d) as u16
}

fn describe(t: u16) -> String {
    let hand = Hand::from_index(t as usize / DEPTH);
    format!("entry {}[{}]", hand, t as usize % DEPTH)
}

fn entry_kind(t: u16) -> EntryKind {
    let (h, d) = (t as usize / DEPTH, t as usize % DEPTH);
    if h == Hand::V.index() && d < V_SAVED {
        EntryKind::CalleeSaved
    } else if h == Hand::S.index() && d == 0 {
        EntryKind::RetAddr
    } else {
        EntryKind::Plain
    }
}

/// Per-hand write windows (index 0 = most recent write) plus the frame.
#[derive(Clone)]
struct ChState {
    hands: [Vec<Av>; NUM_HANDS],
    frame: Frame,
}

impl ChState {
    fn write(&mut self, hand: Hand, av: Av) {
        let ring = &mut self.hands[hand.index()];
        ring.insert(0, av);
        ring.truncate(DEPTH);
    }

    fn mark_all(&self, marks: &mut Marks) {
        for ring in &self.hands {
            for av in ring {
                mark_av(av, marks);
            }
        }
        for av in self.frame.values() {
            mark_av(av, marks);
        }
    }

    /// State at the entry of a called function.
    fn convention_entry() -> ChState {
        let mut hands: [Vec<Av>; NUM_HANDS] =
            std::array::from_fn(|_| vec![Av::opaque(ENTRY_SITE); DEPTH]);
        for (d, slot) in hands[Hand::V.index()].iter_mut().enumerate().take(V_SAVED) {
            *slot = Av::entry(tok(Hand::V, d));
        }
        // s[0] is the return address; deeper s slots are the caller's
        // arguments and stack pointer (the deepest encodable, s[14], is
        // still caller-meaningful; s[15] is unreachable anyway).
        let s = &mut hands[Hand::S.index()];
        s[0] = Av {
            kind: Kind::RetAddr,
            ..Av::entry(tok(Hand::S, 0))
        };
        for (d, slot) in s.iter_mut().enumerate().take(DEPTH - 1).skip(1) {
            *slot = Av::entry(tok(Hand::S, d));
        }
        ChState {
            hands,
            frame: Frame::new(),
        }
    }

    /// State at machine reset: everything unwritten except the reset
    /// stack pointer in `s[0]`.
    fn machine_entry() -> ChState {
        let mut hands: [Vec<Av>; NUM_HANDS] = std::array::from_fn(|_| vec![Av::uninit(); DEPTH]);
        hands[Hand::S.index()][0] = Av::reset();
        ChState {
            hands,
            frame: Frame::new(),
        }
    }
}

impl AbsState for ChState {
    fn join_with(&mut self, other: &Self, marks: &mut Marks) -> bool {
        let mut changed = false;
        for (ring, oring) in self.hands.iter_mut().zip(&other.hands) {
            for (av, oav) in ring.iter_mut().zip(oring) {
                changed |= av.join_with(oav, marks);
            }
        }
        changed |= join_frames(&mut self.frame, &other.frame, marks);
        changed
    }
}

fn flow_of(inst: &Inst) -> Flow {
    match *inst {
        Inst::Branch { target, .. } => Flow::Branch(target),
        Inst::Jump { target } => Flow::Jump(target),
        Inst::Call { target, .. } => Flow::Call(target),
        Inst::CallReg { .. } => Flow::CallInd,
        Inst::JumpReg { .. } => Flow::Ret,
        Inst::Halt { .. } => Flow::Halt,
        _ => Flow::Fall,
    }
}

/// Resolves one source operand, checking the read.
#[allow(clippy::too_many_arguments)]
fn read_src(
    st: &ChState,
    src: Src,
    i: u32,
    cx: UseCx,
    opts: &Options,
    sink: &mut Sink,
    marks: &mut Marks,
) -> Av {
    match src {
        Src::Zero => Av::zero(),
        Src::Hand(h, d) => {
            if !src.is_encodable() {
                sink.error(
                    "E-DIST",
                    Some(i),
                    Some(src.to_string()),
                    format!(
                        "distance {d} is not encodable on hand {h} (max {})",
                        h.max_src_distance()
                    ),
                );
                return Av::inst(i);
            }
            let av = st.hands[h.index()][d as usize].clone();
            mark_av(&av, marks);
            check_read(
                &av,
                i,
                &src.to_string(),
                cx,
                opts,
                sink,
                &entry_kind,
                &describe,
            );
            av
        }
    }
}

/// Number of `mv`s into `s` immediately preceding `i` within the block:
/// the backend's argument pushes, used to locate the caller's stack
/// pointer (`s[nargs]` just before the call).
fn args_pushed(prog: &Program, block_start: u32, i: u32) -> usize {
    let mut n = 0usize;
    let mut j = i;
    while j > block_start {
        j -= 1;
        match prog.insts[j as usize] {
            Inst::Mv { dst: Hand::S, .. } => n += 1,
            _ => break,
        }
    }
    n.min(DEPTH - 1)
}

/// Effect of a call at `i`: the callee may write anything to `t`/`u`
/// and deep `s`, preserves `v[0..8)` by convention, and returns with
/// `s[0]` = the caller's stack pointer and `s[1]` = the return value.
fn apply_call(st: &mut ChState, prog: &Program, block_start: u32, i: u32, marks: &mut Marks) {
    // Everything live escapes into the callee (it can be reached via
    // the s hand or memory), so all current writers count as used.
    st.mark_all(marks);
    let nargs = args_pushed(prog, block_start, i);
    let sp = st.hands[Hand::S.index()][nargs].clone();
    st.hands[Hand::T.index()] = vec![Av::opaque(i); DEPTH];
    st.hands[Hand::U.index()] = vec![Av::opaque(i); DEPTH];
    let mut s = vec![Av::opaque(i); DEPTH];
    s[0] = sp;
    s[1] = Av::retval(i);
    st.hands[Hand::S.index()] = s;
    // v[0..8) survives by the callee-saved convention; deeper v slots
    // were already caller-owned junk. The frame survives: the callee
    // operates below our stack pointer.
}

#[allow(clippy::too_many_arguments)]
fn transfer(
    prog: &Program,
    func: &Func,
    b: usize,
    mut st: ChState,
    marks: &mut Marks,
    sink: &mut Sink,
    opts: &Options,
) -> Vec<(usize, ChState)> {
    let block = &func.blocks[b];
    for i in block.start..block.end {
        let inst = &prog.insts[i as usize];
        match *inst {
            Inst::Alu {
                dst, src1, src2, ..
            } => {
                read_src(&st, src1, i, UseCx::Alu, opts, sink, marks);
                read_src(&st, src2, i, UseCx::Alu, opts, sink, marks);
                st.write(dst, Av::inst(i));
            }
            Inst::AluImm { op, dst, src1, imm } => {
                let a = read_src(&st, src1, i, UseCx::Alu, opts, sink, marks);
                let r = if op == AluOp::Add {
                    addi_result(i, &a, imm as i64)
                } else {
                    Av::inst(i)
                };
                st.write(dst, r);
            }
            Inst::Li { dst, imm } => st.write(dst, Av::cst(i, imm)),
            Inst::Load {
                dst, base, offset, ..
            } => {
                let ba = read_src(&st, base, i, UseCx::Base, opts, sink, marks);
                let v = load_result(i, &st.frame, &ba, offset, marks);
                st.write(dst, v);
            }
            Inst::Store {
                value,
                base,
                offset,
                ..
            } => {
                let va = read_src(&st, value, i, UseCx::StoreValue, opts, sink, marks);
                let ba = read_src(&st, base, i, UseCx::Base, opts, sink, marks);
                store_effect(&mut st.frame, &ba, offset, va);
            }
            Inst::Branch { src1, src2, .. } => {
                read_src(&st, src1, i, UseCx::Branch, opts, sink, marks);
                read_src(&st, src2, i, UseCx::Branch, opts, sink, marks);
            }
            Inst::Jump { .. } | Inst::Nop => {}
            Inst::Call { .. } => {
                apply_call(&mut st, prog, block.start, i, marks);
            }
            Inst::CallReg { src, .. } => {
                read_src(&st, src, i, UseCx::CallTarget, opts, sink, marks);
                apply_call(&mut st, prog, block.start, i, marks);
            }
            Inst::Mv { dst, src } => {
                let a = read_src(&st, src, i, UseCx::Mv, opts, sink, marks);
                st.write(
                    dst,
                    Av {
                        origins: a.origins.clone(),
                        kind: a.kind,
                        writers: Some(vec![i]),
                    },
                );
            }
            Inst::JumpReg { src } => {
                read_src(&st, src, i, UseCx::JrTarget, opts, sink, marks);
                if opts.conventions && !func.is_machine_entry {
                    check_return_conventions(&st, i, sink);
                }
                st.mark_all(marks);
                return Vec::new();
            }
            Inst::Halt { src } => {
                read_src(&st, src, i, UseCx::Halt, opts, sink, marks);
                st.mark_all(marks);
                return Vec::new();
            }
        }
    }
    block.succs.iter().map(|&s| (s, st.clone())).collect()
}

/// At a return: `s[0]` must again be the caller's stack pointer, and
/// each callee-saved `v[j]` must hold its entry value.
fn check_return_conventions(st: &ChState, i: u32, sink: &mut Sink) {
    let s0 = &st.hands[Hand::S.index()][0];
    let sp_ok = s0.origins.is_none() || (0..DEPTH).any(|d| s0.is_entry_value(tok(Hand::S, d)));
    if !sp_ok {
        sink.error(
            "E-SP",
            Some(i),
            Some("s[0]".to_string()),
            "returns without the caller's stack pointer in s[0] \
             (stack not rebalanced)"
                .to_string(),
        );
    }
    for j in 0..V_SAVED {
        let av = &st.hands[Hand::V.index()][j];
        if av.origins.is_some() && !av.is_entry_value(tok(Hand::V, j)) {
            sink.error(
                "E-CALLEE",
                Some(i),
                Some(format!("v[{j}]")),
                format!("callee-saved v[{j}] does not hold its entry value at return"),
            );
        }
    }
}

/// Verifies an assembled Clockhands program. See the crate docs for the
/// property proved and the diagnostic codes.
pub fn verify_clockhands(prog: &Program, opts: &Options) -> Report {
    let len = prog.insts.len() as u32;
    let flow = |i: u32| flow_of(&prog.insts[i as usize]);
    let (funcs, issues) = build_funcs(len, prog.entry, &prog.labels, &flow);
    let mut diags = Vec::new();
    {
        let mut cfg_sink = Sink::new("<cfg>");
        for (at, msg) in issues {
            cfg_sink.error("E-CFG", Some(at), None, msg);
        }
        diags.extend(cfg_sink.into_diags());
    }
    let mut marks = Marks::new(len as usize);
    let mut covered = vec![false; len as usize];
    let mut functions = Vec::new();
    let mut fn_sinks = Vec::new();
    for func in &funcs {
        for b in &func.blocks {
            for i in b.start..b.end {
                covered[i as usize] = true;
            }
        }
        let entry_state = if func.is_machine_entry {
            ChState::machine_entry()
        } else {
            ChState::convention_entry()
        };
        let mut sink = Sink::new(&func.name);
        fixpoint(
            func,
            entry_state,
            &mut marks,
            &mut sink,
            |b, st, marks, sink| transfer(prog, func, b, st, marks, sink, opts),
        );
        fn_sinks.push(sink);
    }
    // Lints run after all fixpoints: a value written in one function can
    // only be marked used from that same function's analysis, but the
    // escape marking at calls/returns is global and must be complete.
    for (func, mut sink) in funcs.iter().zip(fn_sinks) {
        let classify = |i: u32| match prog.insts[i as usize] {
            Inst::Mv { .. } => Some(LintClass::Relay),
            Inst::Li { .. } => Some(LintClass::Fix),
            _ => None,
        };
        let (dead_relays, redundant_fixes) = lint_function(func, &marks, &mut sink, &classify);
        functions.push(FnSummary {
            name: func.name.clone(),
            entry: func.entry,
            insts: func.inst_count(),
            dead_relays,
            redundant_fixes,
        });
        diags.extend(sink.into_diags());
    }
    let unreachable = lint_unreachable(&covered, &mut diags);
    Report {
        isa: "clockhands",
        diags,
        functions,
        unreachable,
        covered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockhands::asm::assemble;

    fn verify_src(src: &str) -> Report {
        let prog = assemble(src).expect("test program assembles");
        verify_clockhands(&prog, &Options::default())
    }

    #[test]
    fn straight_line_program_is_clean() {
        let r = verify_src(
            "li t, 1
             li t, 2
             add t, t[0], t[1]
             halt t[0]",
        );
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn uninitialized_read_is_flagged() {
        let r = verify_src(
            "add t, u[0], u[1]
             halt t[0]",
        );
        assert!(
            r.diags.iter().any(|d| d.code == "E-UNINIT"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn path_shift_of_entry_value_is_flagged() {
        // One arm pushes one `s` write, the other two: at the join,
        // `s[2]` is the argument on one path but the return address on
        // the other — reading it is path-inconsistent (E-PATH).
        let r = verify_src(
            "_start:
             li t, 5
             mv s, t[0]
             call s, f
             halt s[1]
             f:
             bne s[1], zero, .two
             mv s, s[1]
             j .join
             .two:
             mv s, s[1]
             mv s, s[2]
             .join:
             mv t, s[2]
             halt t[0]",
        );
        assert!(r.diags.iter().any(|d| d.code == "E-PATH"), "{}", r.render());
    }

    #[test]
    fn balanced_diamond_is_clean() {
        // Leaf callee, one argument: entry s = [ra, arg, caller-sp].
        // Returns with s = [sp, retval, ...] and jumps through the ra.
        let r = verify_src(
            "_start:
             li t, 5
             mv s, t[0]
             call s, f
             halt s[1]
             f:
             mv t, s[1]
             bne t[0], zero, .two
             li t, 10
             j .join
             .two:
             li t, 20
             .join:
             mv s, t[0]
             mv s, s[3]
             jr s[2]",
        );
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn clobbered_v_at_return_is_flagged() {
        let r = verify_src(
            "_start:
             call s, f
             halt s[1]
             f:
             li v, 7
             mv s, v[0]
             mv s, s[2]
             jr s[2]",
        );
        assert!(
            r.diags.iter().any(|d| d.code == "E-CALLEE"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn call_clobbers_t_values() {
        // A t value computed before a call is unreachable after it.
        let r = verify_src(
            "_start:
             call s, f
             halt s[1]
             f:
             li t, 1
             mv s, s[0]
             call s, g
             mv s, t[0]
             mv s, s[1]
             jr s[1]
             g:
             mv s, s[1]
             mv s, s[2]
             jr s[2]",
        );
        assert!(
            r.diags.iter().any(|d| d.code == "E-CLOBBER"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn distance_boundary_for_every_hand() {
        // The assembler already rejects over-limit distances, so build
        // raw programs: a read at exactly `max_src_distance` is clean, a
        // read one past it is E-DIST — for all four hands.
        use clockhands::inst::Inst;
        use clockhands::program::Program;
        for hand in Hand::ALL {
            let limit = hand.max_src_distance();
            for (d, want_dist_err) in [(limit, false), (limit + 1, true)] {
                let mut prog = Program::new();
                for k in 0..=i64::from(limit) {
                    prog.insts.push(Inst::Li { dst: hand, imm: k });
                }
                prog.insts.push(Inst::Halt {
                    src: Src::Hand(hand, d),
                });
                let r = verify_clockhands(&prog, &Options::default());
                let has_dist = r.diags.iter().any(|dg| dg.code == "E-DIST");
                assert_eq!(
                    has_dist,
                    want_dist_err,
                    "{hand}[{d}] (limit {limit}):\n{}",
                    r.render()
                );
                if !want_dist_err {
                    assert!(r.is_clean(), "{hand}[{d}]:\n{}", r.render());
                }
            }
        }
    }
}
