#![warn(missing_docs)]

//! # proptest (offline shim)
//!
//! A minimal, dependency-free stand-in for the subset of the
//! [proptest](https://crates.io/crates/proptest) API this workspace's
//! property suites use. The build environment has no access to
//! crates.io, so the real crate cannot be vendored; this shim keeps the
//! randomized differential suites (`tests/cross_isa.rs`,
//! `tests/isa_invariants.rs`, `crates/baselines/tests/rename_props.rs`)
//! runnable offline with the same source text.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its case index and the
//!   deterministic per-test seed; rerunning the test replays the same
//!   sequence, so failures are still reproducible.
//! * **Deterministic by default.** Each `proptest!` test derives its RNG
//!   seed from the test's name (overridable with `PROPTEST_SEED`), so
//!   CI runs are stable.
//! * `prop_assume!` counts the case as passed instead of resampling.
//! * The default case count is 64 (real proptest: 256); override per
//!   test with `ProptestConfig::with_cases` or globally with the
//!   `PROPTEST_CASES` environment variable.

use std::ops::Range;
use std::rc::Rc;

/// Deterministic xorshift* generator driving every strategy.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from `PROPTEST_SEED` when set, else from the test name.
    pub fn for_test(name: &str) -> TestRng {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.parse::<u64>() {
                return TestRng(seed | 1);
            }
        }
        // FNV-1a over the name gives a stable, well-mixed nonzero seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// Seeds from an explicit value (used by the `ch-fuzz` harness so a
    /// failing batch can be replayed with `PROPTEST_SEED=<seed>`).
    /// The low bit is forced to 1: xorshift has no zero state.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng(seed | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Why a generated case failed (carried by `prop_assert*!`).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type of a `proptest!` case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A value generator. The shim's analogue of proptest's `Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Gen<O>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> O + 'static,
        O: 'static,
    {
        let inner = self;
        Gen::new(move |rng| f(inner.gen_value(rng)))
    }

    /// Type-erases this strategy (used by `prop_oneof!`).
    fn into_gen(self) -> Gen<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        Gen::new(move |rng| inner.gen_value(rng))
    }
}

/// A boxed, clonable strategy (the closed form every combinator returns).
pub struct Gen<T> {
    f: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            f: Rc::clone(&self.f),
        }
    }
}

impl<T> Gen<T> {
    /// Wraps a drawing function.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Gen<T> {
        Gen { f: Rc::new(f) }
    }

    /// Picks uniformly among `arms` each draw.
    pub fn one_of(arms: Vec<Gen<T>>) -> Gen<T>
    where
        T: 'static,
    {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Gen::new(move |rng| {
            let i = rng.below(arms.len() as u64) as usize;
            arms[i].gen_value(rng)
        })
    }

    /// Picks among `arms` with the given relative weights.
    pub fn one_of_weighted(arms: Vec<(u32, Gen<T>)>) -> Gen<T>
    where
        T: 'static,
    {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        Gen::new(move |rng| {
            let mut pick = rng.below(total);
            for (w, g) in &arms {
                if pick < *w as u64 {
                    return g.gen_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick in range")
        })
    }
}

impl<T> Strategy for Gen<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u128;
                // Spans here always fit u64 (integer ranges in tests are small).
                let off = rng.below(span as u64) as i128;
                (lo + off) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The full-range strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary + 'static>() -> Gen<T> {
    Gen::new(T::arbitrary)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Gen, Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S>(element: S, len: Range<usize>) -> Gen<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        Gen::new(move |rng: &mut TestRng| {
            let n = len.gen_value(rng);
            (0..n).map(|_| element.gen_value(rng)).collect()
        })
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Gen, Strategy, TestRng};

    /// `None` about a quarter of the time, otherwise `Some` of `inner`.
    pub fn of<S>(inner: S) -> Gen<Option<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        Gen::new(move |rng: &mut TestRng| {
            if rng.below(4) == 0 {
                None
            } else {
                Some(inner.gen_value(rng))
            }
        })
    }
}

/// Everything a property suite conventionally imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Gen, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Uniform (or weighted, with `w => strategy` arms) choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($w:literal => $s:expr),+ $(,)?) => {
        $crate::Gen::one_of_weighted(vec![$(($w as u32, $crate::Strategy::into_gen($s))),+])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::Gen::one_of(vec![$($crate::Strategy::into_gen($s)),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), a, b
            )));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Skips the rest of the case when `cond` does not hold.
///
/// The shim counts the case as passed instead of redrawing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Declares `#[test]` functions whose arguments are drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u32..100, y in arb_thing()) { prop_assert!(x < 100); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::gen_value(&($strat), &mut rng);)+
                let outcome: $crate::TestCaseResult = (move || {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{} (deterministic seed; rerun reproduces): {}",
                        stringify!($name), case, config.cases, e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let v = Strategy::gen_value(&(-50i64..50), &mut rng);
            assert!((-50..50).contains(&v));
            let u = Strategy::gen_value(&(3usize..9), &mut rng);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn oneof_weights_respected() {
        let g = prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let mut rng = crate::TestRng::for_test("oneof_weights_respected");
        let ones = (0..1000).filter(|_| g.gen_value(&mut rng) == 1).count();
        assert!(ones > 700, "weight 9:1 should dominate, got {ones}/1000");
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::for_test("same");
        let mut b = crate::TestRng::for_test("same");
        assert_eq!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    proptest! {
        #[test]
        fn macro_draws_and_asserts(x in 0u32..10, v in crate::collection::vec(0u8..4, 1..5)) {
            prop_assert!(x < 10);
            prop_assert!(!v.is_empty() && v.len() < 5, "len {}", v.len());
            prop_assert_eq!(x, x);
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }
}
