//! Reusable sweep engine: deduplicated, order-preserving parallel
//! fan-out over experiment keys.
//!
//! Every table/figure in this crate reduces to "evaluate `f` over a
//! list of config keys, where many keys repeat" (Fig. 13 and Fig. 14
//! share all 75 simulations; per-workload rows re-ask for the same
//! baseline run). The first-generation drivers handled that with
//! hand-rolled warm-up passes ([`crate::par_map`] plus a process-wide
//! keyed cache). This module generalises the pattern:
//!
//! * [`sweep`] — dedupe the key list, evaluate each **distinct** key
//!   exactly once on the worker pool, and return results **in input
//!   order** (repeats are clones of the single computation);
//! * [`sweep_stream`] — the same, but results are handed to a sink
//!   closure in input order *as they complete*, so a renderer can start
//!   emitting rows while the tail of the sweep is still simulating.
//!
//! Both are deterministic at any `--jobs` setting: output order is the
//! input key order, never completion order.

use crate::{jobs, par_map};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Evaluates `f` once per **distinct** key and returns one result per
/// input key, in input order.
///
/// Repeated keys cost one computation plus a clone. The distinct keys
/// are fanned out over the process worker pool ([`crate::jobs`]).
///
/// # Examples
///
/// ```
/// let keys = ["a", "b", "a", "a", "c"];
/// let calls = std::sync::atomic::AtomicUsize::new(0);
/// let out = ch_bench::sweep(&keys, |k| {
///     calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
///     k.to_uppercase()
/// });
/// assert_eq!(out, ["A", "B", "A", "A", "C"]);
/// assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), 3);
/// ```
pub fn sweep<K, V>(keys: &[K], f: impl Fn(&K) -> V + Sync) -> Vec<V>
where
    K: Eq + Hash + Clone + Sync,
    V: Clone + Send,
{
    let mut unique: Vec<K> = Vec::new();
    let mut index: HashMap<K, usize> = HashMap::with_capacity(keys.len());
    for k in keys {
        index.entry(k.clone()).or_insert_with(|| {
            unique.push(k.clone());
            unique.len() - 1
        });
    }
    let results = par_map(&unique, f);
    keys.iter().map(|k| results[index[k]].clone()).collect()
}

/// Like [`sweep`], but delivers each result to `sink` in input order as
/// soon as it (and everything before it) is available, instead of
/// waiting for the whole sweep.
///
/// The sink runs on the calling thread; workers never block on it
/// (results they finish early are parked until their turn). Rendering
/// the head of a table therefore overlaps with simulating its tail.
pub fn sweep_stream<K, V>(keys: &[K], f: impl Fn(&K) -> V + Sync, mut sink: impl FnMut(&K, V))
where
    K: Eq + Hash + Clone + Sync,
    V: Clone + Send,
{
    let mut unique: Vec<K> = Vec::new();
    let mut index: HashMap<K, usize> = HashMap::with_capacity(keys.len());
    for k in keys {
        index.entry(k.clone()).or_insert_with(|| {
            unique.push(k.clone());
            unique.len() - 1
        });
    }
    let workers = jobs().min(unique.len());
    if workers <= 1 {
        // Serial: compute distinct keys lazily in first-use order.
        let mut done: Vec<Option<V>> = vec![None; unique.len()];
        for k in keys {
            let i = index[k];
            if done[i].is_none() {
                done[i] = Some(f(k));
            }
            sink(k, done[i].clone().expect("just computed"));
        }
        return;
    }
    let slots: Mutex<Vec<Option<V>>> = Mutex::new(vec![None; unique.len()]);
    let ready = Condvar::new();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(k) = unique.get(i) else { break };
                let v = f(k);
                slots.lock().expect("sweep slots")[i] = Some(v);
                ready.notify_all();
            });
        }
        // Drain in input order on this thread while workers fill slots.
        for k in keys {
            let i = index[k];
            let mut guard = slots.lock().expect("sweep slots");
            while guard[i].is_none() {
                guard = ready.wait(guard).expect("sweep slots");
            }
            let v = guard[i].clone().expect("checked above");
            drop(guard);
            sink(k, v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_jobs;

    #[test]
    fn sweep_dedupes_and_preserves_order() {
        set_jobs(4);
        let keys: Vec<u32> = (0..40).map(|i| i % 7).collect();
        let calls = AtomicUsize::new(0);
        let out = sweep(&keys, |&k| {
            calls.fetch_add(1, Ordering::Relaxed);
            k * 10
        });
        set_jobs(0);
        assert_eq!(
            calls.load(Ordering::Relaxed),
            7,
            "one call per distinct key"
        );
        assert_eq!(out, keys.iter().map(|k| k * 10).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_stream_delivers_in_input_order() {
        for workers in [1, 4] {
            set_jobs(workers);
            let keys: Vec<u64> = (0..32).map(|i| i % 5).collect();
            let mut seen = Vec::new();
            sweep_stream(
                &keys,
                |&k| {
                    // Skew cost so completion order differs from input order.
                    if k % 2 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    k + 100
                },
                |&k, v| seen.push((k, v)),
            );
            set_jobs(0);
            assert_eq!(
                seen,
                keys.iter().map(|&k| (k, k + 100)).collect::<Vec<_>>(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn sweep_handles_empty_input() {
        assert_eq!(sweep::<u32, u32>(&[], |&k| k), Vec::<u32>::new());
        sweep_stream::<u32, u32>(&[], |&k| k, |_, _| panic!("no keys, no calls"));
    }
}
