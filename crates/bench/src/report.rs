//! PR-over-PR benchmark tracking: the `figures bench` experiment.
//!
//! Times the full Fig. 13/14 sweep (every workload × ISA × width) on
//! the fast-path engine and on the reference simulator in the same
//! process, checks the two produce byte-identical counters, and emits a
//! machine-readable `BENCH_<pr>.json` snapshot:
//!
//! * sweep wall time and committed-instructions-per-second for both
//!   engines (same worker pool, same warmed trace caches — the ratio is
//!   the engine speedup, independent of the host's absolute speed);
//! * a per-workload breakdown (instructions and per-engine time);
//! * the worker count and scale the numbers were taken at.
//!
//! If a committed `BENCH_<pr>.json` baseline is present, the run fails
//! when the fast sweep's per-instruction wall time regresses more than
//! [`REGRESSION_TOLERANCE`] against it — CI keeps the engine honest PR
//! over PR. Baselines are host-dependent; set `CH_BENCH_SKIP_CHECK=1`
//! to snapshot on a different machine without tripping the gate.

use crate::{branch_profile, full_sweep, jobs, par_map, soa_trace, trace, warm_traces};
use ch_common::config::MachineConfig;
use ch_common::stats::Counters;
use ch_common::IsaKind;
use ch_sim::run_fast_profiled;
use ch_workloads::{Scale, Workload};
use std::fmt::Write as _;
use std::time::Instant;

/// The PR this snapshot format belongs to (names the JSON file).
pub const PR: u32 = 6;

/// Maximum tolerated per-instruction wall-time regression of the fast
/// sweep versus the committed baseline (0.25 = 25 %).
pub const REGRESSION_TOLERANCE: f64 = 0.25;

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

struct EnginePass {
    wall_ms: f64,
    /// Per-combo (counters, milliseconds), in `full_sweep()` order.
    per_combo: Vec<(Counters, f64)>,
}

fn run_pass(
    combos: &[(Workload, IsaKind, ch_common::config::WidthClass)],
    f: impl Fn(MachineConfig, Workload, IsaKind) -> Counters + Sync,
) -> EnginePass {
    let t0 = Instant::now();
    let per_combo = par_map(combos, |&(w, isa, width)| {
        let c0 = Instant::now();
        let counters = f(MachineConfig::preset(width, isa), w, isa);
        (counters, c0.elapsed().as_secs_f64() * 1e3)
    });
    EnginePass {
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        per_combo,
    }
}

/// Measures the sweep on both engines and renders the `BENCH_<pr>.json`
/// snapshot. Panics if the engines disagree on any counter — the
/// benchmark must never publish numbers for a wrong result.
pub fn bench_json(scale: Scale) -> String {
    let combos = full_sweep();
    // Warm the trace and SoA caches first: the snapshot times the
    // engines, not the interpreters.
    warm_traces(
        scale,
        Workload::ALL
            .iter()
            .flat_map(|&w| IsaKind::ALL.map(|isa| (w, isa))),
    );
    let pairs: Vec<(Workload, IsaKind)> = Workload::ALL
        .iter()
        .flat_map(|&w| IsaKind::ALL.map(|isa| (w, isa)))
        .collect();
    crate::sweep(&pairs, |&(w, isa)| {
        soa_trace(w, isa, scale);
        branch_profile(w, isa, scale);
    });

    let fast = run_pass(&combos, |cfg, w, isa| {
        let p = branch_profile(w, isa, scale);
        run_fast_profiled(cfg, &soa_trace(w, isa, scale), &p)
    });
    let reference = run_pass(&combos, |cfg, w, isa| {
        ch_sim::run_reference(cfg, trace(w, isa, scale).iter())
    });
    for (&(w, isa, width), (f, r)) in combos
        .iter()
        .zip(fast.per_combo.iter().zip(&reference.per_combo))
    {
        assert_eq!(
            f.0,
            r.0,
            "fast and reference engines disagree on {}/{}/{}",
            w.name(),
            isa.tag(),
            width.label()
        );
    }

    let insts: u64 = combos
        .iter()
        .map(|&(w, isa, _)| trace(w, isa, scale).len() as u64)
        .sum();
    let minsts = |wall_ms: f64| insts as f64 / wall_ms / 1e3;

    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"pr\": {PR},");
    let _ = writeln!(s, "  \"scale\": \"{}\",", scale_name(scale));
    let _ = writeln!(s, "  \"jobs\": {},", jobs());
    let _ = writeln!(s, "  \"configs\": {},", combos.len());
    let _ = writeln!(s, "  \"insts\": {insts},");
    let _ = writeln!(s, "  \"sweep_wall_ms\": {:.3},", fast.wall_ms);
    let _ = writeln!(
        s,
        "  \"sweep_minsts_per_sec\": {:.3},",
        minsts(fast.wall_ms)
    );
    let _ = writeln!(s, "  \"reference_wall_ms\": {:.3},", reference.wall_ms);
    let _ = writeln!(
        s,
        "  \"reference_minsts_per_sec\": {:.3},",
        minsts(reference.wall_ms)
    );
    let _ = writeln!(s, "  \"speedup\": {:.3},", reference.wall_ms / fast.wall_ms);
    let _ = writeln!(s, "  \"workloads\": [");
    for (wi, w) in Workload::ALL.iter().enumerate() {
        let mut w_insts = 0u64;
        let mut fast_ms = 0.0;
        let mut ref_ms = 0.0;
        for (i, &(cw, isa, _)) in combos.iter().enumerate() {
            if cw == *w {
                w_insts += trace(cw, isa, scale).len() as u64;
                fast_ms += fast.per_combo[i].1;
                ref_ms += reference.per_combo[i].1;
            }
        }
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"insts\": {}, \"fast_ms\": {:.3}, \"reference_ms\": {:.3}}}{}",
            w.name(),
            w_insts,
            fast_ms,
            ref_ms,
            if wi + 1 < Workload::ALL.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Extracts the numeric value of a top-level `"key": value` field from
/// the hand-written snapshot format (keys are unique and unnested).
pub fn json_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares a freshly measured snapshot against the committed baseline.
///
/// Returns a one-line verdict, or an error when the fast sweep's
/// per-instruction wall time regressed more than
/// [`REGRESSION_TOLERANCE`]. Throughput (Minst/s) is wall time per
/// instruction inverted, so comparing it compares wall time for the
/// same suite even when instruction counts drift between PRs.
pub fn check_regression(baseline: &str, current: &str) -> Result<String, String> {
    let old = json_number(baseline, "sweep_minsts_per_sec")
        .ok_or("baseline snapshot has no sweep_minsts_per_sec")?;
    let new = json_number(current, "sweep_minsts_per_sec")
        .ok_or("current snapshot has no sweep_minsts_per_sec")?;
    let ratio = old / new; // >1 = slower now
    if ratio > 1.0 + REGRESSION_TOLERANCE {
        return Err(format!(
            "sweep throughput regressed {:.0}% ({old:.1} -> {new:.1} Minst/s, tolerance {:.0}%); \
             if this is an intended trade-off or a slower host, refresh the baseline with \
             CH_BENCH_SKIP_CHECK=1 just bench-json",
            (ratio - 1.0) * 100.0,
            REGRESSION_TOLERANCE * 100.0
        ));
    }
    Ok(format!(
        "baseline check: {old:.1} -> {new:.1} Minst/s ({}{:.0}% vs committed, tolerance {:.0}%)",
        if ratio > 1.0 { "-" } else { "+" },
        (ratio - 1.0).abs() * 100.0,
        REGRESSION_TOLERANCE * 100.0
    ))
}

/// The `figures bench` experiment: measure, gate, snapshot, summarise.
///
/// Writes `BENCH_<pr>.json` into the working directory (the repo root
/// under `just bench-json`), first failing the run if a committed
/// baseline exists and the sweep regressed (see [`check_regression`];
/// skip with `CH_BENCH_SKIP_CHECK=1`).
pub fn bench_experiment(scale: Scale) -> String {
    let json = bench_json(scale);
    let path = format!("BENCH_{PR}.json");
    let mut s = String::new();
    let _ = writeln!(s, "Benchmark snapshot ({path})");
    let baseline = std::fs::read_to_string(&path).ok();
    let rebaseline = std::env::var_os("CH_BENCH_SKIP_CHECK").is_some();
    // Throughput only compares within a scale (test-scale traces are
    // warmup-dominated), and a casual default-scale run must not
    // clobber the committed small-scale baseline.
    let same_scale = baseline
        .as_deref()
        .is_none_or(|b| b.contains(&format!("\"scale\": \"{}\"", scale_name(scale))));
    match baseline.as_deref() {
        Some(b) if !rebaseline && same_scale => match check_regression(b, &json) {
            Ok(verdict) => {
                let _ = writeln!(s, "{verdict}");
            }
            Err(e) => panic!("{e}"),
        },
        Some(_) if !rebaseline => {
            let _ = writeln!(
                s,
                "baseline is a different scale: not compared, snapshot not written \
                 (CH_BENCH_SKIP_CHECK=1 to re-baseline)"
            );
        }
        _ => {
            let _ = writeln!(s, "no committed baseline checked (new snapshot)");
        }
    }
    if same_scale || rebaseline {
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    }
    let fast = json_number(&json, "sweep_minsts_per_sec").unwrap_or(0.0);
    let reference = json_number(&json, "reference_minsts_per_sec").unwrap_or(0.0);
    let speedup = json_number(&json, "speedup").unwrap_or(0.0);
    let insts = json_number(&json, "insts").unwrap_or(0.0);
    let _ = writeln!(
        s,
        "{} configs, {:.1}M committed insts, {} workers",
        json_number(&json, "configs").unwrap_or(0.0),
        insts / 1e6,
        jobs(),
    );
    let _ = writeln!(
        s,
        "fast engine  {:>8.1} Minst/s\nreference    {:>8.1} Minst/s\nspeedup      {:>8.2}x",
        fast, reference, speedup
    );
    let _ = writeln!(s, "(engines verified counter-identical on every config)");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAP: &str = "{\n  \"sweep_minsts_per_sec\": 100.0,\n  \"speedup\": 5.0\n}";

    #[test]
    fn json_number_extracts_fields() {
        assert_eq!(json_number(SNAP, "sweep_minsts_per_sec"), Some(100.0));
        assert_eq!(json_number(SNAP, "speedup"), Some(5.0));
        assert_eq!(json_number(SNAP, "missing"), None);
    }

    #[test]
    fn regression_gate_trips_past_tolerance() {
        let old = SNAP;
        let ok = "{\"sweep_minsts_per_sec\": 90.0}";
        let slower_but_within = "{\"sweep_minsts_per_sec\": 81.0}";
        let too_slow = "{\"sweep_minsts_per_sec\": 70.0}";
        assert!(check_regression(old, ok).is_ok());
        assert!(check_regression(old, slower_but_within).is_ok());
        assert!(check_regression(old, too_slow).is_err());
        // Faster is always fine.
        assert!(check_regression(old, "{\"sweep_minsts_per_sec\": 500.0}").is_ok());
    }
}
