//! The `figures density` experiment: bit-accurate code density across
//! the three ISAs, as a `BENCH_9.json` snapshot.
//!
//! Every workload is laid out by `ch-encode` under both binary variants
//! — the 32-bit fixed-width format and the 16/32-bit compressed format
//! — for all three ISAs. Each layout is round-tripped through the
//! decoder (`decode(encode(p)) == p`, bit-for-bit, asserted here so the
//! snapshot can never publish numbers for a stream the decoder
//! disagrees with), then the committed trace is relocated onto the
//! byte-accurate PCs and timed on the 8-wide Table 2 machine. The
//! snapshot records, per workload × ISA × variant:
//!
//! * static code size: text bytes, literal-pool bytes, bytes per
//!   static instruction, and the 16-bit coverage of the compressed form;
//! * front-end effects: I$ misses per kilo-instruction, line-straddle
//!   count, fetch-bandwidth utilization (committed bytes over fetched
//!   group capacity), and cycles.
//!
//! This makes the paper's code-density argument measurable: Clockhands'
//! short per-hand distance fields compress better than STRAIGHT's wide
//! distance fields, and compete with a conventional ISA's full register
//! specifiers.
//!
//! Fixed-width layouts relocate every PC to itself, so their counters
//! are asserted byte-identical to the abstract-PC simulation — the
//! byte-accurate fetch path is a refinement, not a fork, of the model
//! every other figure uses.

use crate::{compiled_set, encoded_set, jobs, par_map, simulate, simulate_encoded, trace};
use ch_common::config::{MachineConfig, WidthClass};
use ch_common::{EncodingVariant, IsaKind};
use ch_workloads::{Scale, Workload};
use std::fmt::Write as _;

/// The PR this snapshot format belongs to (names the JSON file).
pub const PR: u32 = 9;

/// The ISAs in render order.
const ISAS: [IsaKind; 3] = [IsaKind::Riscv, IsaKind::Straight, IsaKind::Clockhands];

/// One workload × ISA × variant measurement.
struct Row {
    /// Static instructions in the emitted program.
    insts: usize,
    /// Laid-out text-section bytes.
    text_bytes: u64,
    /// Literal-pool bytes (8 per pooled constant).
    pool_bytes: u64,
    /// Instructions that took the 16-bit form.
    compact: usize,
    /// Committed instructions of the W8 timing run.
    committed: u64,
    /// Cycles on the 8-wide machine.
    cycles: u64,
    /// Fetch groups started.
    fetch_groups: u64,
    /// I$ misses (both lines of a straddle can miss).
    icache_misses: u64,
    /// Instructions that straddled an I$ line boundary.
    straddles: u64,
    /// Committed instruction bytes fetched.
    fetch_bytes: u64,
}

impl Row {
    /// Static bytes per static instruction (text + pool).
    fn bytes_per_inst(&self) -> f64 {
        (self.text_bytes + self.pool_bytes) as f64 / self.insts as f64
    }

    /// I$ misses per thousand committed instructions.
    fn icache_mpki(&self) -> f64 {
        self.icache_misses as f64 * 1000.0 / self.committed as f64
    }

    /// Committed bytes over the byte capacity of the started fetch
    /// groups (the W8 machines fetch 32 bytes per group).
    fn fetch_utilization(&self, group_bytes: u64) -> f64 {
        self.fetch_bytes as f64 / (self.fetch_groups * group_bytes) as f64
    }
}

/// Lays out, round-trips, relocates, and times one combination. Panics
/// on any encode, decode, or round-trip failure — the snapshot must
/// never publish numbers for a stream the decoder disagrees with.
fn measure(w: Workload, scale: Scale, isa: IsaKind, variant: EncodingVariant) -> Row {
    let ctx = || format!("{}/{}/{variant}", w.name(), isa.name());
    let enc = encoded_set(w, scale, variant);
    let set = compiled_set(w, scale);
    let (insts, text_bytes, pool_len, compact) = match isa {
        IsaKind::Riscv => {
            let p = &enc.riscv;
            let back = ch_encode::decode_riscv(&p.bytes, &p.pool)
                .unwrap_or_else(|e| panic!("{}: decode failed: {e}", ctx()));
            assert!(back == set.riscv.insts, "{}: round-trip mismatch", ctx());
            (
                back.len(),
                p.bytes.len(),
                p.pool.len(),
                p.layout.compact_count(),
            )
        }
        IsaKind::Straight => {
            let p = &enc.straight;
            let back = ch_encode::decode_straight(&p.bytes, &p.pool)
                .unwrap_or_else(|e| panic!("{}: decode failed: {e}", ctx()));
            assert!(back == set.straight.insts, "{}: round-trip mismatch", ctx());
            (
                back.len(),
                p.bytes.len(),
                p.pool.len(),
                p.layout.compact_count(),
            )
        }
        IsaKind::Clockhands => {
            let p = &enc.clockhands;
            let back = ch_encode::decode_clockhands(&p.bytes, &p.pool)
                .unwrap_or_else(|e| panic!("{}: decode failed: {e}", ctx()));
            assert!(
                back == set.clockhands.insts,
                "{}: round-trip mismatch",
                ctx()
            );
            (
                back.len(),
                p.bytes.len(),
                p.pool.len(),
                p.layout.compact_count(),
            )
        }
    };
    let c = simulate_encoded(w, isa, WidthClass::W8, scale, variant);
    if variant == EncodingVariant::Fixed {
        // Fixed-width layouts keep the abstract PCs, so the byte-accurate
        // fetch path must be invisible: counters byte-identical to the
        // abstract-PC run every other figure is rendered from.
        let abstract_c = simulate(w, isa, WidthClass::W8, scale);
        assert!(
            c == abstract_c,
            "{}: fixed-width layout changed simulation results",
            ctx()
        );
    }
    Row {
        insts,
        text_bytes: text_bytes as u64,
        pool_bytes: 8 * pool_len as u64,
        compact,
        committed: trace(w, isa, scale).len() as u64,
        cycles: c.cycles,
        fetch_groups: c.fetch_groups,
        icache_misses: c.icache_misses,
        straddles: c.icache_straddles,
        fetch_bytes: c.fetch_bytes,
    }
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

/// Measures every workload × ISA × variant and renders the
/// `BENCH_9.json` snapshot.
pub fn density_json(scale: Scale) -> String {
    let combos: Vec<(Workload, IsaKind, EncodingVariant)> = Workload::ALL
        .iter()
        .flat_map(|&w| {
            ISAS.into_iter()
                .flat_map(move |isa| EncodingVariant::ALL.map(move |v| (w, isa, v)))
        })
        .collect();
    let rows = par_map(&combos, |&(w, isa, v)| measure(w, scale, isa, v));
    let row = |w: Workload, isa: IsaKind, v: EncodingVariant| -> &Row {
        let at = combos
            .iter()
            .position(|&(cw, ci, cv)| cw == w && ci == isa && cv == v)
            .unwrap();
        &rows[at]
    };
    // Group byte capacity is per-width, not per-ISA: every W8 preset
    // fetches front_width x 4 bytes per group.
    let group_bytes = MachineConfig::preset(WidthClass::W8, IsaKind::Riscv).fetch_bytes as u64;

    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"pr\": {PR},");
    let _ = writeln!(s, "  \"scale\": \"{}\",", scale_name(scale));
    let _ = writeln!(s, "  \"jobs\": {},", jobs());
    let _ = writeln!(s, "  \"width\": \"8f\",");
    for (ii, &isa) in ISAS.iter().enumerate() {
        let _ = writeln!(s, "  \"{}\": {{", isa.name());
        for (vi, variant) in EncodingVariant::ALL.into_iter().enumerate() {
            let _ = writeln!(s, "    \"{variant}\": [");
            for (wi, &w) in Workload::ALL.iter().enumerate() {
                let r = row(w, isa, variant);
                let _ = writeln!(
                    s,
                    "      {{\"name\": \"{}\", \"insts\": {}, \"text_bytes\": {}, \
                     \"pool_bytes\": {}, \"compact\": {}, \"bytes_per_inst\": {:.4}, \
                     \"cycles\": {}, \"icache_mpki\": {:.4}, \"straddles\": {}, \
                     \"fetch_util\": {:.4}}}{}",
                    w.name(),
                    r.insts,
                    r.text_bytes,
                    r.pool_bytes,
                    r.compact,
                    r.bytes_per_inst(),
                    r.cycles,
                    r.icache_mpki(),
                    r.straddles,
                    r.fetch_utilization(group_bytes),
                    if wi + 1 < Workload::ALL.len() {
                        ","
                    } else {
                        ""
                    }
                );
            }
            let _ = writeln!(
                s,
                "    ]{}",
                if vi + 1 < EncodingVariant::ALL.len() {
                    ","
                } else {
                    ""
                }
            );
        }
        let _ = writeln!(s, "  }}{}", if ii + 1 < ISAS.len() { "," } else { "" });
    }
    let _ = writeln!(s, "}}");
    s
}

/// The `figures density` experiment: measure, snapshot, summarise.
///
/// Writes `BENCH_<pr>.json` into the working directory (the repo root
/// under `just density`) and renders a human-readable density table.
/// A committed snapshot at a different scale is left untouched unless
/// `CH_BENCH_SKIP_CHECK=1` forces a re-baseline.
pub fn density_experiment(scale: Scale) -> String {
    let json = density_json(scale);
    let path = format!("BENCH_{PR}.json");
    let mut s = String::new();
    let _ = writeln!(s, "Code-density snapshot ({path})");
    let baseline = std::fs::read_to_string(&path).ok();
    let rebaseline = std::env::var_os("CH_BENCH_SKIP_CHECK").is_some();
    let same_scale = baseline
        .as_deref()
        .is_none_or(|b| b.contains(&format!("\"scale\": \"{}\"", scale_name(scale))));
    if same_scale || rebaseline {
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        let _ = writeln!(s, "snapshot written");
    } else {
        let _ = writeln!(
            s,
            "committed snapshot is a different scale: not overwritten \
             (CH_BENCH_SKIP_CHECK=1 to re-baseline)"
        );
    }
    let _ = write!(s, "{}", render_table(&json));
    s
}

/// Renders the per-workload density table from a snapshot's JSON text.
fn render_table(json: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:<4} {:<10} {:>6} {:>8} {:>7} {:>9} {:>8} {:>10}",
        "workload",
        "ISA",
        "variant",
        "insts",
        "bytes/i",
        "16-bit",
        "cycles",
        "I$ mpki",
        "fetch-util"
    );
    let mut isa = "??";
    let mut variant = "??";
    for line in json.lines() {
        let t = line.trim();
        for (key, tag) in [
            ("\"riscv\"", "RV"),
            ("\"straight\"", "ST"),
            ("\"clockhands\"", "CH"),
        ] {
            if t.starts_with(key) {
                isa = tag;
            }
        }
        for v in ["fixed", "compressed"] {
            if t.starts_with(&format!("\"{v}\"")) {
                variant = v;
            }
        }
        let Some(name) = field_str(t, "name") else {
            continue;
        };
        let g = |k: &str| field_num(t, k).unwrap_or(0.0);
        let _ = writeln!(
            s,
            "{:<12} {:<4} {:<10} {:>6} {:>8.2} {:>7} {:>9} {:>8.2} {:>9.1}%",
            name,
            isa,
            variant,
            g("insts"),
            g("bytes_per_inst"),
            g("compact"),
            g("cycles"),
            g("icache_mpki"),
            g("fetch_util") * 100.0
        );
    }
    s
}

fn field_str<'j>(line: &'j str, key: &str) -> Option<&'j str> {
    let pat = format!("\"{key}\": \"");
    let at = line.find(&pat)? + pat.len();
    line[at..].split('"').next()
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
