//! Keyed once-cells: the process-wide dedup primitive behind every
//! trace/simulation cache and the sweep service's request dedup.
//!
//! The first generation of this crate hand-rolled the pattern four
//! times (`OnceLock<Mutex<HashMap<K, Arc<OnceLock<V>>>>>` plus a lookup
//! helper). [`KeyedOnce`] is the generalization: a concurrent map from
//! key to a compute-exactly-once cell, with hit/miss accounting so a
//! serving layer can report its dedup ratio.
//!
//! Guarantees:
//!
//! * each distinct key's value is computed **exactly once** per
//!   process, no matter how many threads ask concurrently;
//! * the map lock is held only for the cell lookup, never while a value
//!   is being computed, so different keys proceed in parallel;
//! * concurrent callers of the *same* key block on the cell (an
//!   in-flight join), not on the map, and never duplicate the work.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A concurrent "compute each key's value exactly once" cache.
///
/// Usable in `static` position ([`KeyedOnce::new`] is `const`). A call
/// that ran the closure counts as a **miss**; a call that found the
/// value present — or joined another thread's in-flight computation —
/// counts as a **hit**.
///
/// # Examples
///
/// ```
/// use ch_bench::cache::KeyedOnce;
///
/// static CACHE: KeyedOnce<u32, u64> = KeyedOnce::new();
/// assert_eq!(CACHE.get_or_compute(7, || 7 * 7), 49);
/// assert_eq!(CACHE.get_or_compute(7, || unreachable!("cached")), 49);
/// assert_eq!((CACHE.misses(), CACHE.hits()), (1, 1));
/// ```
pub struct KeyedOnce<K, V> {
    map: OnceLock<Mutex<HashMap<K, Arc<OnceLock<V>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash, V: Clone> KeyedOnce<K, V> {
    /// An empty cache (allocates nothing until first use).
    pub const fn new() -> KeyedOnce<K, V> {
        KeyedOnce {
            map: OnceLock::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The per-key once-cell, created on first use.
    ///
    /// The map lock is held only for this lookup — never while a value
    /// is being computed — so concurrent callers of *different* keys
    /// proceed in parallel, and concurrent callers of the *same* key
    /// block on the returned cell rather than computing the value twice.
    fn cell(&self, key: K) -> Arc<OnceLock<V>> {
        let map = self.map.get_or_init(Mutex::default);
        let mut map = map.lock().expect("keyed-once map lock");
        Arc::clone(map.entry(key).or_default())
    }

    /// Returns the cached value for `key`, computing it with `f` if this
    /// is the first request (subsequent and concurrent requests share
    /// that one computation).
    pub fn get_or_compute(&self, key: K, f: impl FnOnce() -> V) -> V {
        let cell = self.cell(key);
        let mut computed = false;
        let v = cell
            .get_or_init(|| {
                computed = true;
                f()
            })
            .clone();
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        v
    }

    /// Returns the cached value if (and only if) it is already computed.
    pub fn get(&self, key: K) -> Option<V> {
        let map = self.map.get()?;
        let cell = {
            let map = map.lock().expect("keyed-once map lock");
            Arc::clone(map.get(&key)?)
        };
        cell.get().cloned()
    }

    /// Calls that found the value computed (or joined an in-flight
    /// computation of it).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Calls that ran the compute closure themselves.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of keys present (computed or in flight).
    pub fn len(&self) -> usize {
        self.map
            .get()
            .map_or(0, |m| m.lock().expect("keyed-once map lock").len())
    }

    /// Whether no key has ever been requested.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash, V: Clone> Default for KeyedOnce<K, V> {
    fn default() -> Self {
        KeyedOnce::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn computes_each_key_once_under_contention() {
        let cache: KeyedOnce<u32, u32> = KeyedOnce::new();
        let calls = AtomicUsize::new(0);
        let (cache, calls) = (&cache, &calls);
        std::thread::scope(|s| {
            for t in 0..8 {
                s.spawn(move || {
                    for i in 0..100u32 {
                        let v = cache.get_or_compute(i % 10, || {
                            calls.fetch_add(1, Ordering::Relaxed);
                            (i % 10) * 3
                        });
                        assert_eq!(v, (i % 10) * 3, "thread {t}");
                    }
                });
            }
        });
        assert_eq!(calls.load(Ordering::Relaxed), 10, "one compute per key");
        assert_eq!(cache.misses(), 10);
        assert_eq!(cache.hits(), 8 * 100 - 10);
        assert_eq!(cache.len(), 10);
    }

    #[test]
    fn get_only_sees_computed_values() {
        let cache: KeyedOnce<&str, u32> = KeyedOnce::new();
        assert_eq!(cache.get("a"), None);
        cache.get_or_compute("a", || 1);
        assert_eq!(cache.get("a"), Some(1));
        assert_eq!(cache.get("b"), None);
        assert!(!cache.is_empty());
    }
}
