#![deny(missing_docs)]

//! # ch-bench — regenerates every table and figure of the paper
//!
//! Each `table*`/`fig*` function returns the experiment's text rendering;
//! the `figures` binary prints them (see EXPERIMENTS.md for the recorded
//! paper-vs-measured comparison). All experiments run the five workload
//! kernels through the compiler, the functional interpreters, the timing
//! simulator, and the energy/FPGA models as appropriate.
//!
//! ## Parallel execution
//!
//! The `(workload, isa, width)` jobs behind a table or figure are
//! independent, so each experiment warms the process-wide trace and
//! simulation caches through the [`driver`] fan-out before rendering
//! serially from the caches. Rendered output is therefore byte-identical
//! at any worker count (`--jobs` on the `figures` binary), and repeated
//! experiments (Fig. 13 and Fig. 14 share all 75 simulations) are
//! computed exactly once per process — concurrent callers of the same
//! key block on a per-key cell ([`cache::KeyedOnce`]) instead of
//! duplicating the run.
//!
//! ## Remote execution
//!
//! With a sweep server configured ([`remote::set_server`], the `figures
//! --server ADDR` flag), [`simulate`] fills its local cache from the
//! server instead of the in-process engine, so repeated figure runs
//! across processes share one server-side cache. Results travel as
//! exact-integer JSON ([`Counters`] round-trips bit-for-bit), which
//! keeps remote figure output byte-identical to in-process output.

use ch_analysis::{
    hand_usage, hands_sweep, instruction_mix, lifetime_ccdf, lifetimes_of, straight_increase,
};
use ch_common::config::{MachineConfig, WidthClass};
use ch_common::op::OpClass;
use ch_common::stats::{BusyClock, Counters, ExperimentTiming};
use ch_common::{DynInst, EncodingVariant, IsaKind};
use ch_energy::energy;
use ch_fpga::resources;
use ch_sim::{run_fast_profiled, BranchProfile, SoaTrace};
use ch_workloads::{Scale, Workload};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

pub mod cache;
pub mod densityreport;
pub mod driver;
pub mod optreport;
pub mod remote;
pub mod report;
pub mod sweep;

pub use cache::KeyedOnce;
pub use densityreport::density_experiment;
pub use driver::{jobs, par_for_each, par_map, set_jobs};
pub use optreport::opt_experiment;
pub use report::bench_experiment;
pub use sweep::{sweep, sweep_stream};

/// Interpreter instruction budget.
const LIMIT: u64 = 2_000_000_000;

/// Busy time charged by every trace and simulation computation; compared
/// against wall time by [`timed`] to report the achieved speedup.
static BUSY: BusyClock = BusyClock::new();

type TraceKey = (Workload, IsaKind, u8);
type SimKey = (Workload, IsaKind, WidthClass, u8);
type EncKey = (Workload, IsaKind, u8, EncodingVariant);
type EncSimKey = (Workload, IsaKind, WidthClass, u8, EncodingVariant);

static TRACE_CACHE: KeyedOnce<TraceKey, Arc<[DynInst]>> = KeyedOnce::new();
static SOA_CACHE: KeyedOnce<TraceKey, Arc<SoaTrace>> = KeyedOnce::new();
static PROFILE_CACHE: KeyedOnce<TraceKey, Arc<BranchProfile>> = KeyedOnce::new();
static SIM_CACHE: KeyedOnce<SimKey, Counters> = KeyedOnce::new();
static REF_SIM_CACHE: KeyedOnce<SimKey, Counters> = KeyedOnce::new();
static SET_CACHE: KeyedOnce<(Workload, u8), Arc<ch_compiler::CompiledSet>> = KeyedOnce::new();
static ENCODED_CACHE: KeyedOnce<(Workload, u8, EncodingVariant), Arc<ch_compiler::EncodedSet>> =
    KeyedOnce::new();
static ENC_SOA_CACHE: KeyedOnce<EncKey, Arc<SoaTrace>> = KeyedOnce::new();
static ENC_PROFILE_CACHE: KeyedOnce<EncKey, Arc<BranchProfile>> = KeyedOnce::new();
static ENC_SIM_CACHE: KeyedOnce<EncSimKey, Counters> = KeyedOnce::new();

fn scale_id(s: Scale) -> u8 {
    match s {
        Scale::Test => 0,
        Scale::Small => 1,
        Scale::Full => 2,
    }
}

/// The committed trace of one workload on one ISA (cached per process;
/// a cache hit is a pointer bump, not a trace copy).
pub fn trace(w: Workload, isa: IsaKind, scale: Scale) -> Arc<[DynInst]> {
    TRACE_CACHE.get_or_compute((w, isa, scale_id(scale)), || {
        BUSY.time(|| compute_trace(w, isa, scale))
    })
}

fn compute_trace(w: Workload, isa: IsaKind, scale: Scale) -> Arc<[DynInst]> {
    // trace_on validates the checksum against the Rust reference and, on
    // any failure, names the workload/scale/ISA and pipeline stage — so a
    // bad kernel aborts the figures run with a diagnosable message.
    let (t, _outcome) = w
        .trace_on(scale, isa, LIMIT)
        .unwrap_or_else(|e| panic!("{e}"));
    Arc::from(t)
}

/// The committed trace of one workload in the fast engine's
/// structure-of-arrays layout (cached per process; built once from the
/// [`trace`] cache and shared by every machine width that sweeps it).
pub fn soa_trace(w: Workload, isa: IsaKind, scale: Scale) -> Arc<SoaTrace> {
    SOA_CACHE.get_or_compute((w, isa, scale_id(scale)), || {
        let t = trace(w, isa, scale);
        BUSY.time(|| Arc::new(SoaTrace::new(t.iter())))
    })
}

/// The pre-replayed branch-predictor outcomes of one workload's trace
/// (cached per process; every preset shares one predictor geometry, so
/// all five machine widths reuse one replay — see
/// [`ch_sim::BranchProfile`]).
pub fn branch_profile(w: Workload, isa: IsaKind, scale: Scale) -> Arc<BranchProfile> {
    PROFILE_CACHE.get_or_compute((w, isa, scale_id(scale)), || {
        let t = soa_trace(w, isa, scale);
        // Geometry is width-independent; W4 stands in for all presets.
        let cfg = MachineConfig::preset(WidthClass::W4, isa);
        BUSY.time(|| Arc::new(BranchProfile::new(&cfg, &t)))
    })
}

/// Simulates one workload on one Table 2 machine (cached per process).
///
/// Runs on the fast-path engine ([`ch_sim::FastEngine`]) with the
/// cached [`branch_profile`]; the differential suite in `tests/`
/// asserts its counters are byte-identical to the reference
/// [`Simulator`](ch_sim::Simulator) on every workload × ISA × width.
///
/// With a sweep server configured ([`remote::set_server`]), a cache
/// miss is fetched from the server instead of computed in-process; the
/// exact [`Counters`] wire round-trip keeps the result — and everything
/// rendered from it — byte-identical either way.
pub fn simulate(w: Workload, isa: IsaKind, width: WidthClass, scale: Scale) -> Counters {
    SIM_CACHE.get_or_compute((w, isa, width, scale_id(scale)), || {
        if let Some(addr) = remote::server() {
            return remote::fetch_sim(&addr, w, isa, width, scale, EncodingVariant::Fixed);
        }
        let t = soa_trace(w, isa, scale);
        let p = branch_profile(w, isa, scale);
        BUSY.time(|| run_fast_profiled(MachineConfig::preset(width, isa), &t, &p))
    })
}

/// Simulates one workload on the reference (interpretive)
/// [`Simulator`](ch_sim::Simulator) instead of the fast engine (cached
/// per process, never routed to a server — the reference engine is the
/// local ground truth the fast path is checked against).
pub fn simulate_reference(w: Workload, isa: IsaKind, width: WidthClass, scale: Scale) -> Counters {
    REF_SIM_CACHE.get_or_compute((w, isa, width, scale_id(scale)), || {
        let t = trace(w, isa, scale);
        BUSY.time(|| ch_sim::run_reference(MachineConfig::preset(width, isa), t.iter()))
    })
}

/// The compiled (unencoded) three-ISA program set of one workload
/// (cached per process; one compile shared by every encoding variant).
pub fn compiled_set(w: Workload, scale: Scale) -> Arc<ch_compiler::CompiledSet> {
    SET_CACHE.get_or_compute((w, scale_id(scale)), || {
        BUSY.time(|| {
            let set = ch_compiler::compile(&w.source(scale))
                .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name()));
            Arc::new(set)
        })
    })
}

/// The byte-accurate binary layout of one workload's programs under one
/// encoding variant (cached per process).
pub fn encoded_set(
    w: Workload,
    scale: Scale,
    variant: EncodingVariant,
) -> Arc<ch_compiler::EncodedSet> {
    ENCODED_CACHE.get_or_compute((w, scale_id(scale), variant), || {
        let set = compiled_set(w, scale);
        BUSY.time(|| {
            let enc = ch_compiler::encode_set(&set, variant)
                .unwrap_or_else(|e| panic!("{}/{variant}: encode failed: {e}", w.name()));
            Arc::new(enc)
        })
    })
}

fn encoded_layout(set: &ch_compiler::EncodedSet, isa: IsaKind) -> &ch_encode::Layout {
    match isa {
        IsaKind::Riscv => &set.riscv.layout,
        IsaKind::Straight => &set.straight.layout,
        IsaKind::Clockhands => &set.clockhands.layout,
    }
}

/// The committed trace of one workload relocated onto the byte-accurate
/// layout of one encoding variant, in the fast engine's layout (cached
/// per process). Under [`EncodingVariant::Fixed`] the relocation is the
/// identity, so the trace — and every counter simulated from it — is
/// byte-identical to the abstract-PC [`soa_trace`].
pub fn encoded_soa_trace(
    w: Workload,
    isa: IsaKind,
    scale: Scale,
    variant: EncodingVariant,
) -> Arc<SoaTrace> {
    ENC_SOA_CACHE.get_or_compute((w, isa, scale_id(scale), variant), || {
        let t = trace(w, isa, scale);
        let enc = encoded_set(w, scale, variant);
        BUSY.time(|| {
            let mut relocated = t.to_vec();
            ch_encode::relocate_trace(&mut relocated, encoded_layout(&enc, isa));
            Arc::new(SoaTrace::new(relocated.iter()))
        })
    })
}

/// The branch-predictor replay over a relocated trace (cached per
/// process). Compressed layouts move PCs, which moves predictor index
/// bits, so the replay is per-variant.
pub fn encoded_branch_profile(
    w: Workload,
    isa: IsaKind,
    scale: Scale,
    variant: EncodingVariant,
) -> Arc<BranchProfile> {
    ENC_PROFILE_CACHE.get_or_compute((w, isa, scale_id(scale), variant), || {
        let t = encoded_soa_trace(w, isa, scale, variant);
        let cfg = MachineConfig::preset(WidthClass::W4, isa);
        BUSY.time(|| Arc::new(BranchProfile::new(&cfg, &t)))
    })
}

/// Simulates one workload on one Table 2 machine with its code laid out
/// under `variant` (cached per process; routed to a sweep server like
/// [`simulate`] when one is configured).
pub fn simulate_encoded(
    w: Workload,
    isa: IsaKind,
    width: WidthClass,
    scale: Scale,
    variant: EncodingVariant,
) -> Counters {
    ENC_SIM_CACHE.get_or_compute((w, isa, width, scale_id(scale), variant), || {
        if let Some(addr) = remote::server() {
            return remote::fetch_sim(&addr, w, isa, width, scale, variant);
        }
        let t = encoded_soa_trace(w, isa, scale, variant);
        let p = encoded_branch_profile(w, isa, scale, variant);
        BUSY.time(|| run_fast_profiled(MachineConfig::preset(width, isa), &t, &p))
    })
}

/// Runs `f`, reporting its wall time and the busy time its trace and
/// simulation computations charged across all workers.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, ExperimentTiming) {
    let busy0 = BUSY.total();
    let t0 = Instant::now();
    let r = f();
    let timing = ExperimentTiming {
        wall: t0.elapsed(),
        busy: BUSY.total() - busy0,
    };
    (r, timing)
}

/// Computes the given traces in parallel (deduplicated, cache-backed).
pub(crate) fn warm_traces(scale: Scale, keys: impl IntoIterator<Item = (Workload, IsaKind)>) {
    let keys: Vec<(Workload, IsaKind)> = keys.into_iter().collect();
    sweep(&keys, |&(w, isa)| {
        trace(w, isa, scale);
    });
}

/// Computes the given simulations in parallel. Traces are warmed first
/// so sim workers never serialize on a shared trace cell.
fn warm_sims(scale: Scale, combos: &[(Workload, IsaKind, WidthClass)]) {
    warm_traces(scale, combos.iter().map(|&(w, isa, _)| (w, isa)));
    par_for_each(combos, |&(w, isa, width)| {
        simulate(w, isa, width, scale);
    });
}

/// Every `(workload, isa, width)` combination of the Fig. 13/14 sweeps.
pub(crate) fn full_sweep() -> Vec<(Workload, IsaKind, WidthClass)> {
    let mut combos = Vec::new();
    for w in Workload::ALL {
        for isa in IsaKind::ALL {
            for width in WidthClass::ALL {
                combos.push((w, isa, width));
            }
        }
    }
    combos
}

/// Table 1: recovery information (checkpoint) size per architecture.
pub fn table1() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 1: recovery information size (8-fetch model)");
    let _ = writeln!(s, "{:<16} {:>18} {:>12}", "Architecture", "formula", "bits");
    for isa in IsaKind::ALL {
        let cfg = MachineConfig::preset(WidthClass::W8, isa);
        let formula = match isa {
            IsaKind::Riscv => "63 x ~10b",
            IsaKind::Straight => "~11b + 64b",
            IsaKind::Clockhands => "4 x ~11b",
        };
        let _ = writeln!(
            s,
            "{:<16} {:>18} {:>12}",
            isa.to_string(),
            formula,
            cfg.checkpoint_bits()
        );
    }
    s
}

/// Table 2: the machine configurations.
pub fn table2() -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 2: {:<10} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "parameter", "4f", "6f", "8f", "12f", "16f"
    );
    let cfgs: Vec<MachineConfig> = WidthClass::ALL
        .iter()
        .map(|&w| MachineConfig::preset(w, IsaKind::Clockhands))
        .collect();
    let row = |name: &str, f: &dyn Fn(&MachineConfig) -> u32| {
        let mut r = format!("         {name:<12}");
        for c in &cfgs {
            let _ = write!(r, " {:>6}", f(c));
        }
        r
    };
    for (name, f) in [
        (
            "front width",
            (&|c: &MachineConfig| c.front_width) as &dyn Fn(&MachineConfig) -> u32,
        ),
        ("issue width", &|c| c.issue_width),
        ("ROB", &|c| c.rob),
        ("scheduler", &|c| c.scheduler),
        ("load queue", &|c| c.load_queue),
        ("store queue", &|c| c.store_queue),
        ("phys regs", &|c| c.phys_regs),
    ] {
        let _ = writeln!(s, "{}", row(name, f));
    }
    let _ = writeln!(
        s,
        "         front latency: RISC-V 7 cycles; STRAIGHT/Clockhands 5 cycles"
    );
    s
}

/// Table 3: FPGA resources of the allocation stage and the whole core.
pub fn table3() -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 3: FPGA resource model (paper values in parentheses)"
    );
    let paper: [(u32, IsaKind, f64, f64); 9] = [
        (4, IsaKind::Riscv, 2310.0, 101_483.0),
        (4, IsaKind::Straight, 442.0, 96_631.0),
        (4, IsaKind::Clockhands, 401.0, 99_913.0),
        (8, IsaKind::Riscv, 12_309.0, 190_380.0),
        (8, IsaKind::Straight, 787.0, 188_118.0),
        (8, IsaKind::Clockhands, 761.0, 185_701.0),
        (16, IsaKind::Riscv, 30_230.0, 350_377.0),
        (16, IsaKind::Straight, 1_641.0, 354_105.0),
        (16, IsaKind::Clockhands, 1_432.0, 349_074.0),
    ];
    let _ = writeln!(
        s,
        "{:<6} {:<12} {:>22} {:>26}",
        "width", "ISA", "alloc LUTs (paper)", "overall LUTs (paper)"
    );
    for (w, isa, pal, pov) in paper {
        let r = resources(w, isa);
        let _ = writeln!(
            s,
            "{:<6} {:<12} {:>12.0} ({:>8.0}) {:>14.0} ({:>9.0})",
            format!("{w}-way"),
            isa.to_string(),
            r.alloc_luts,
            pal,
            r.total_luts,
            pov
        );
    }
    s
}

/// Fig. 3: inevitable STRAIGHT instruction increase per workload.
pub fn fig3(scale: Scale) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fig. 3: inevitable STRAIGHT increase (fraction of executed insts)"
    );
    let _ = writeln!(
        s,
        "{:<12} {:>10} {:>16} {:>18} {:>8}",
        "workload", "nop", "mv-MaxDistance", "mv-LoopConstant", "total"
    );
    warm_traces(scale, Workload::ALL.map(|w| (w, IsaKind::Riscv)));
    let mut totals = (0.0, 0.0, 0.0);
    for w in Workload::ALL {
        let t = trace(w, IsaKind::Riscv, scale);
        let inc = straight_increase(&t);
        let n = inc.total_insts as f64;
        let (a, b, c) = (
            inc.nop_convergence as f64 / n,
            inc.mv_max_distance as f64 / n,
            inc.mv_loop_constant as f64 / n,
        );
        totals.0 += a;
        totals.1 += b;
        totals.2 += c;
        let _ = writeln!(
            s,
            "{:<12} {:>9.1}% {:>15.1}% {:>17.1}% {:>7.1}%",
            w.name(),
            100.0 * a,
            100.0 * b,
            100.0 * c,
            100.0 * (a + b + c)
        );
    }
    let k = Workload::ALL.len() as f64;
    let _ = writeln!(
        s,
        "{:<12} {:>9.1}% {:>15.1}% {:>17.1}% {:>7.1}%",
        "average",
        100.0 * totals.0 / k,
        100.0 * totals.1 / k,
        100.0 * totals.2 / k,
        100.0 * (totals.0 + totals.1 + totals.2) / k
    );
    s
}

/// Fig. 4: register lifetime CCDF from the RISC traces.
pub fn fig4(scale: Scale) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fig. 4: definition frequency of registers with lifetime >= k"
    );
    warm_traces(scale, Workload::ALL.map(|w| (w, IsaKind::Riscv)));
    for w in Workload::ALL {
        let t = trace(w, IsaKind::Riscv, scale);
        let d = lifetimes_of(t.iter());
        let ccdf = lifetime_ccdf(&d, |_| true);
        let _ = write!(s, "{:<12}", w.name());
        for (k, f) in ccdf.iter().step_by(2) {
            let _ = write!(s, " {k}:{f:.4}");
        }
        let _ = writeln!(s);
    }
    let _ = writeln!(s, "(power law: frequency ~ O(1/k))");
    s
}

/// Fig. 7: remaining relay moves versus hand count.
pub fn fig7(scale: Scale) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Fig. 7: remaining loop-constant relays vs hand count");
    let _ = writeln!(s, "{:<10} {:>10} {:>14}", "hands", "general", "one-for-SP");
    let sweeps = par_map(&Workload::ALL, |&w| {
        let t = trace(w, IsaKind::Riscv, scale);
        hands_sweep(&t)
    });
    for k in 1..=8usize {
        let g: f64 =
            sweeps.iter().map(|sw| sw.fraction(k, false)).sum::<f64>() / sweeps.len() as f64;
        let p: f64 =
            sweeps.iter().map(|sw| sw.fraction(k, true)).sum::<f64>() / sweeps.len() as f64;
        let _ = writeln!(s, "{:<10} {:>9.1}% {:>13.1}%", k, 100.0 * g, 100.0 * p);
    }
    s
}

/// Fig. 13: relative performance (normalised to the 4-fetch RISC model).
pub fn fig13(scale: Scale) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Fig. 13: performance relative to 4-fetch RISC-V");
    let _ = writeln!(
        s,
        "{:<12} {:<6} {:>8} {:>8} {:>8}",
        "workload", "width", "R", "S", "C"
    );
    warm_sims(scale, &full_sweep());
    for w in Workload::ALL {
        let base = simulate(w, IsaKind::Riscv, WidthClass::W4, scale).cycles as f64;
        for width in WidthClass::ALL {
            let r = base / simulate(w, IsaKind::Riscv, width, scale).cycles as f64;
            let st = base / simulate(w, IsaKind::Straight, width, scale).cycles as f64;
            let c = base / simulate(w, IsaKind::Clockhands, width, scale).cycles as f64;
            let _ = writeln!(
                s,
                "{:<12} {:<6} {:>8.3} {:>8.3} {:>8.3}",
                w.name(),
                width.label(),
                r,
                st,
                c
            );
        }
    }
    s
}

/// Fig. 14: energy relative to the 4-fetch RISC model, with the renamer
/// component separated out.
pub fn fig14(scale: Scale) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fig. 14: energy relative to 4-fetch RISC-V (average of workloads)"
    );
    let _ = writeln!(
        s,
        "{:<6} {:<12} {:>10} {:>14} {:>14}",
        "width", "ISA", "total", "renamer", "vs RISC"
    );
    warm_sims(scale, &full_sweep());
    // Baseline: 4-fetch RISC average energy.
    let mut base = 0.0;
    for w in Workload::ALL {
        let c = simulate(w, IsaKind::Riscv, WidthClass::W4, scale);
        base += energy(&MachineConfig::preset(WidthClass::W4, IsaKind::Riscv), &c).total();
    }
    base /= Workload::ALL.len() as f64;
    for width in WidthClass::ALL {
        let mut risc_total = 0.0;
        for isa in IsaKind::ALL {
            let cfg = MachineConfig::preset(width, isa);
            let mut tot = 0.0;
            let mut ren = 0.0;
            for w in Workload::ALL {
                let c = simulate(w, isa, width, scale);
                let e = energy(&cfg, &c);
                tot += e.total();
                ren += e.component("Renamer");
            }
            tot /= Workload::ALL.len() as f64;
            ren /= Workload::ALL.len() as f64;
            if isa == IsaKind::Riscv {
                risc_total = tot;
            }
            let _ = writeln!(
                s,
                "{:<6} {:<12} {:>10.2} {:>13.1}% {:>13.1}%",
                width.label(),
                isa.to_string(),
                tot / base,
                100.0 * ren / tot,
                100.0 * (1.0 - tot / risc_total)
            );
        }
    }
    s
}

/// Fig. 15: executed-instruction breakdown, normalised to RISC.
pub fn fig15(scale: Scale) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Fig. 15: executed instructions relative to RISC-V");
    let _ = writeln!(
        s,
        "{:<12} {:<4} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "workload", "ISA", "total", "Load", "Store", "ALU", "Move", "NOP"
    );
    warm_traces(
        scale,
        Workload::ALL
            .iter()
            .flat_map(|&w| IsaKind::ALL.map(|isa| (w, isa))),
    );
    for w in Workload::ALL {
        let base = trace(w, IsaKind::Riscv, scale).len() as f64;
        for isa in IsaKind::ALL {
            let t = trace(w, isa, scale);
            let mix = instruction_mix(t.iter());
            let _ = writeln!(
                s,
                "{:<12} {:<4} {:>7.3} {:>8} {:>8} {:>8} {:>8} {:>8}",
                w.name(),
                isa.tag(),
                t.len() as f64 / base,
                mix.count(OpClass::Load),
                mix.count(OpClass::Store),
                mix.count(OpClass::IntAlu),
                mix.count(OpClass::Move),
                mix.count(OpClass::Nop),
            );
        }
    }
    s
}

/// Fig. 16: per-hand read/write usage (Clockhands traces).
pub fn fig16(scale: Scale) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Fig. 16: hand reads/writes per executed instruction");
    let _ = writeln!(
        s,
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "workload", "t.w", "u.w", "v.w", "s.w", "nodst", "t.r", "u.r", "v.r", "s.r"
    );
    warm_traces(scale, Workload::ALL.map(|w| (w, IsaKind::Clockhands)));
    for w in Workload::ALL {
        let t = trace(w, IsaKind::Clockhands, scale);
        let u = hand_usage(t.iter());
        let n = u.total.max(1) as f64;
        let _ = writeln!(
            s,
            "{:<12} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            w.name(),
            100.0 * u.writes[0] as f64 / n,
            100.0 * u.writes[1] as f64 / n,
            100.0 * u.writes[2] as f64 / n,
            100.0 * u.writes[3] as f64 / n,
            100.0 * u.no_dst_writes as f64 / n,
            100.0 * u.reads[0] as f64 / n,
            100.0 * u.reads[1] as f64 / n,
            100.0 * u.reads[2] as f64 / n,
            100.0 * u.reads[3] as f64 / n,
        );
    }
    s
}

/// Fig. 17: lifetime CCDF for each ISA (STRAIGHT truncates at 127).
pub fn fig17(scale: Scale) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fig. 17: lifetime CCDF per ISA (frequency at selected k)"
    );
    let _ = writeln!(
        s,
        "{:<12} {:<4} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "workload", "ISA", "k=1", "k=16", "k=128", "k=1024", "k=8192"
    );
    warm_traces(
        scale,
        Workload::ALL
            .iter()
            .flat_map(|&w| IsaKind::ALL.map(|isa| (w, isa))),
    );
    for w in Workload::ALL {
        for isa in IsaKind::ALL {
            let t = trace(w, isa, scale);
            let d = lifetimes_of(t.iter());
            let ccdf = lifetime_ccdf(&d, |_| true);
            let at = |k: u64| -> f64 {
                if ccdf.last().map(|&(b, _)| k > b).unwrap_or(true) {
                    return 0.0;
                }
                ccdf.iter()
                    .take_while(|&&(b, _)| b <= k)
                    .last()
                    .map(|&(_, f)| f)
                    .unwrap_or(0.0)
            };
            let _ = writeln!(
                s,
                "{:<12} {:<4} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
                w.name(),
                isa.tag(),
                at(1),
                at(16),
                at(128),
                at(1024),
                at(8192)
            );
        }
    }
    s
}

/// Fig. 18: lifetime CCDF per hand (Clockhands traces).
pub fn fig18(scale: Scale) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fig. 18: lifetime CCDF per hand (frequency at selected k)"
    );
    let _ = writeln!(
        s,
        "{:<12} {:<5} {:>9} {:>9} {:>9} {:>9}",
        "workload", "hand", "k=1", "k=16", "k=256", "k=4096"
    );
    warm_traces(scale, Workload::ALL.map(|w| (w, IsaKind::Clockhands)));
    for w in Workload::ALL {
        let t = trace(w, IsaKind::Clockhands, scale);
        let d = lifetimes_of(t.iter());
        for (hi, name) in [(0u8, "t"), (1, "u"), (2, "v"), (3, "s")] {
            let ccdf = lifetime_ccdf(&d, |tag| tag.hand() == Some(hi));
            let at = |k: u64| -> f64 {
                if ccdf.last().map(|&(b, _)| k > b).unwrap_or(true) {
                    return 0.0;
                }
                ccdf.iter()
                    .take_while(|&&(b, _)| b <= k)
                    .last()
                    .map(|&(_, f)| f)
                    .unwrap_or(0.0)
            };
            let _ = writeln!(
                s,
                "{:<12} {:<5} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
                w.name(),
                name,
                at(1),
                at(16),
                at(256),
                at(4096)
            );
        }
    }
    s
}

/// Ablations of Clockhands design choices (Sections 4.1–4.3 and 5.2):
/// per-hand physical-register quotas, and the shorter rename-free front
/// end.
pub fn ablation(scale: Scale) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Ablation: Clockhands design choices (8-fetch, cycles)");
    let _ = writeln!(
        s,
        "{:<12} {:>10} {:>12} {:>12}",
        "workload", "paper cfg", "starved t", "7-cyc front"
    );
    let base = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
    // (a) Starve the t hand (128 registers) instead of the t-heavy
    // Table 2 split — Section 4.3 argues t needs the most.
    let mut equal = base.clone();
    let rest = (base.phys_regs - 128) / 3;
    equal.hand_quotas = Some([128, rest, rest, base.phys_regs - 128 - 2 * rest]);
    // (b) A RISC-depth front end (what renaming would cost in cycles).
    let mut deep = base.clone();
    deep.front_latency = 7;
    warm_traces(scale, Workload::ALL.map(|w| (w, IsaKind::Clockhands)));
    let jobs: Vec<(Workload, &MachineConfig)> = Workload::ALL
        .iter()
        .flat_map(|&w| [&base, &equal, &deep].map(|cfg| (w, cfg)))
        .collect();
    let cycles = par_map(&jobs, |&(w, cfg)| {
        let t = soa_trace(w, IsaKind::Clockhands, scale);
        // The ablations vary hand quotas and front-end depth only, so the
        // predictor replay (geometry-keyed) is shared with the main sweep.
        let p = branch_profile(w, IsaKind::Clockhands, scale);
        BUSY.time(|| run_fast_profiled(cfg.clone(), &t, &p).cycles)
    });
    for (w, row) in Workload::ALL.iter().zip(cycles.chunks(3)) {
        let _ = writeln!(
            s,
            "{:<12} {:>10} {:>12} {:>12}",
            w.name(),
            row[0],
            row[1],
            row[2]
        );
    }
    let _ = writeln!(
        s,
        "(even a starved t quota barely binds — static partitioning is not\n\
the bottleneck, matching Section 5.3's claim; the deeper front end\n\
costs cycles through slower misprediction recovery, Section 5.2)"
    );
    s
}

/// Short column header for a [`ch_common::StallBreakdown`] row label.
fn stall_col(label: &str) -> &str {
    match label {
        "frontend" => "front",
        "branch-recovery" => "br-rec",
        "alloc-rename" => "rename",
        "alloc-rp" => "rp-wrap",
        "rob-full" => "rob",
        "sched-full" => "sched",
        "lsq-full" => "lsq",
        "exec-dep" => "dep",
        other => other, // "memory", "drain"
    }
}

/// Top-down stall attribution: where every commit slot of every
/// `(workload, ISA, width)` run went. Each row is exhaustive — the
/// commit column plus the ten stall columns sum to 100% of
/// `commit_width x cycles` (asserted here, tested in `crates/sim`).
pub fn stalls(scale: Scale) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Stall attribution: share of commit slots (commit width x cycles)"
    );
    let _ = write!(
        s,
        "{:<12} {:<6} {:<4} {:>7}",
        "workload", "width", "ISA", "commit"
    );
    for (label, _) in ch_common::StallBreakdown::default().rows() {
        let _ = write!(s, " {:>7}", stall_col(label));
    }
    let _ = writeln!(s);
    warm_sims(scale, &full_sweep());
    for w in Workload::ALL {
        for width in WidthClass::ALL {
            for isa in IsaKind::ALL {
                let c = simulate(w, isa, width, scale);
                let cw = MachineConfig::preset(width, isa).commit_width;
                assert!(
                    c.slots_conserved(cw),
                    "{w}/{isa}/{}: stall account does not close",
                    width.label()
                );
                let slots = (cw as u64 * c.cycles) as f64;
                let _ = write!(
                    s,
                    "{:<12} {:<6} {:<4} {:>6.1}%",
                    w.name(),
                    width.label(),
                    isa.tag(),
                    100.0 * c.committed as f64 / slots
                );
                for (_, v) in c.stalls.rows() {
                    let _ = write!(s, " {:>6.1}%", 100.0 * v as f64 / slots);
                }
                let _ = writeln!(s);
            }
        }
    }
    let _ = writeln!(
        s,
        "(columns left to right: slots filled by committing instructions, then\n\
idle slots blamed on: front-end fetch, branch-misprediction recovery,\n\
renamer free-list (RISC only), register-pointer wrap (STRAIGHT/Clockhands\n\
only), ROB full, scheduler full, load/store queue full, memory (own miss\n\
or load-to-use), pure data/execution dependence, end-of-run drain)"
    );
    s
}

/// Per-instruction pipeline traces: writes Konata `.kanata` and JSONL
/// files under `target/traces/` for every workload on the 8-fetch
/// machines, and returns a summary table of what was written.
pub fn traces(scale: Scale) -> String {
    /// How many committed instructions each trace file covers.
    const INSTS: usize = 3_000;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Pipeline traces: first {INSTS} committed instructions, 8-fetch machines"
    );
    let _ = writeln!(
        s,
        "{:<12} {:<4} {:>8} {:>12} {:>26}",
        "workload", "ISA", "records", "last commit", "file (target/traces/)"
    );
    let combos: Vec<(Workload, IsaKind)> = Workload::ALL
        .iter()
        .flat_map(|&w| IsaKind::ALL.map(|isa| (w, isa)))
        .collect();
    warm_traces(scale, combos.iter().copied());
    let outputs = par_map(&combos, |&(w, isa)| {
        let t = soa_trace(w, isa, scale);
        BUSY.time(|| {
            let engine = ch_sim::FastEngine::with_tracer(
                MachineConfig::preset(WidthClass::W8, isa),
                ch_sim::TraceBuffer::with_limit(INSTS),
            );
            let (_, buf) = engine.run(&t);
            let last = buf.records().last().map(|r| r.stamps.commit).unwrap_or(0);
            (buf.to_kanata(), buf.to_jsonl(), buf.records().len(), last)
        })
    });
    let dir = std::path::Path::new("target/traces");
    std::fs::create_dir_all(dir).expect("create target/traces");
    for (&(w, isa), (kanata, jsonl, records, last)) in combos.iter().zip(outputs) {
        let stem = format!("{}-{}-8f", w.name(), isa.tag());
        std::fs::write(dir.join(format!("{stem}.kanata")), &kanata).expect("write .kanata");
        std::fs::write(dir.join(format!("{stem}.jsonl")), &jsonl).expect("write .jsonl");
        let _ = writeln!(
            s,
            "{:<12} {:<4} {:>8} {:>12} {:>26}",
            w.name(),
            isa.tag(),
            records,
            last,
            format!("{stem}.kanata/.jsonl")
        );
    }
    let _ = writeln!(
        s,
        "(open the .kanata files in Konata: https://github.com/shioyadan/Konata)"
    );
    s
}

/// Static-verifier lint summary: every workload's compiled output on
/// every backend, with per-ISA dead-relay / redundant-fix / unreachable
/// counts. Lint warnings are allowed (they quantify backend slack);
/// error-severity findings abort the run — the backends must emit
/// verifier-clean code.
pub fn verify_lints(scale: Scale) -> String {
    use ch_verify::Report;
    let mut s = String::new();
    let _ = writeln!(s, "Static verification lints (ch-verify, errors are fatal)");
    let _ = writeln!(
        s,
        "{:<12} {:<4} {:>6} {:>12} {:>14} {:>12}",
        "workload", "ISA", "insts", "dead relays", "redundant fixes", "unreachable"
    );
    let opts = ch_verify::Options::default();
    let sets = par_map(&Workload::ALL, |&w| {
        w.compile(scale)
            .unwrap_or_else(|e| panic!("{} failed to compile: {e}", w.name()))
    });
    let mut measured: Vec<(&str, &str, usize, usize)> = Vec::new();
    for (w, set) in Workload::ALL.iter().zip(sets) {
        let reports: [Report; 3] = [
            ch_verify::verify_clockhands(&set.clockhands, &opts),
            ch_verify::verify_straight(&set.straight, &opts),
            ch_verify::verify_riscv(&set.riscv, &opts),
        ];
        for r in reports {
            assert!(
                r.is_clean(),
                "{}/{}: verifier errors:\n{}",
                w.name(),
                r.isa,
                r.render()
            );
            let insts: usize = r.functions.iter().map(|f| f.insts).sum();
            measured.push((w.name(), r.isa, r.dead_relays(), r.redundant_fixes()));
            let _ = writeln!(
                s,
                "{:<12} {:<4} {:>6} {:>12} {:>14} {:>12}",
                w.name(),
                match r.isa {
                    "clockhands" => "CH",
                    "straight" => "ST",
                    _ => "RV",
                },
                insts,
                r.dead_relays(),
                r.redundant_fixes(),
                r.unreachable
            );
        }
    }
    let _ = writeln!(
        s,
        "(dead relays: mv instructions whose value is provably never read;\n\
redundant fixes: li edge-fill writes never read; unreachable: instructions\n\
reachable from no function. All are backend slack, not correctness bugs.)"
    );
    let _ = writeln!(s, "{}", check_lint_baseline(scale, &measured));
    s
}

/// Committed per-workload lint baseline, regenerated with
/// `CH_VERIFY_SKIP_CHECK=1 just figures verify` (which rewrites the
/// file in place). Format: one `workload isa dead_relays
/// redundant_fixes` line per program, preceded by a `scale` header.
const LINT_BASELINE: &str = include_str!("../data/lint_baseline.txt");

/// Compares measured lint counts against [`LINT_BASELINE`].
///
/// The baseline is a ratchet: any workload whose dead-relay or
/// redundant-fix count *rises* above the committed value fails the run
/// (a relay-minimization regression slipped in); counts that fall just
/// suggest re-baselining. `CH_VERIFY_SKIP_CHECK=1` skips the check and
/// rewrites `crates/bench/data/lint_baseline.txt` from the measurement
/// (run from the repo root). Baselines are per-scale; a mismatched
/// scale is reported, not compared.
fn check_lint_baseline(scale: Scale, measured: &[(&str, &str, usize, usize)]) -> String {
    let render = |rows: &[(&str, &str, usize, usize)]| -> String {
        let mut b = format!("scale {}\n", scale.name());
        for &(w, isa, dead, redundant) in rows {
            let _ = writeln!(b, "{w} {isa} {dead} {redundant}");
        }
        b
    };
    if std::env::var_os("CH_VERIFY_SKIP_CHECK").is_some() {
        let path = "crates/bench/data/lint_baseline.txt";
        return match std::fs::write(path, render(measured)) {
            Ok(()) => format!("lint baseline rewritten ({path}); check skipped"),
            Err(e) => format!("lint baseline NOT rewritten ({path}: {e}); check skipped"),
        };
    }
    let mut lines = LINT_BASELINE.lines();
    let header = lines.next().unwrap_or_default();
    if header != format!("scale {}", scale.name()) {
        return format!(
            "lint baseline is for `{header}`, not scale {}: not compared",
            scale.name()
        );
    }
    let mut worse = Vec::new();
    let mut drifted = false;
    for line in lines {
        let mut f = line.split_whitespace();
        let (Some(w), Some(isa), Some(dead), Some(redundant)) =
            (f.next(), f.next(), f.next(), f.next())
        else {
            continue;
        };
        let (dead, redundant): (usize, usize) =
            (dead.parse().unwrap_or(0), redundant.parse().unwrap_or(0));
        let Some(&(_, _, mdead, mredundant)) = measured
            .iter()
            .find(|&&(mw, misa, _, _)| mw == w && misa == isa)
        else {
            continue;
        };
        if mdead > dead || mredundant > redundant {
            worse.push(format!(
                "{w}/{isa}: dead relays {dead} -> {mdead}, redundant fixes \
                 {redundant} -> {mredundant}"
            ));
        }
        drifted |= mdead < dead || mredundant < redundant;
    }
    assert!(
        worse.is_empty(),
        "lint counts regressed vs crates/bench/data/lint_baseline.txt:\n  {}\n\
         (an intended trade-off? re-baseline with CH_VERIFY_SKIP_CHECK=1)",
        worse.join("\n  ")
    );
    if drifted {
        "lint baseline check: ok (some counts improved; consider re-baselining)".to_string()
    } else {
        "lint baseline check: ok".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        let t1 = table1();
        assert!(t1.contains("Clockhands") && t1.contains("44"));
        let t2 = table2();
        assert!(t2.contains("4096"));
        let t3 = table3();
        assert!(t3.contains("16-way"));
    }

    #[test]
    fn fig13_shape_holds_on_one_workload() {
        // Clockhands within a few percent of RISC; both above STRAIGHT.
        let w = Workload::Xz;
        let r = simulate(w, IsaKind::Riscv, WidthClass::W8, Scale::Test).cycles as f64;
        let st = simulate(w, IsaKind::Straight, WidthClass::W8, Scale::Test).cycles as f64;
        let c = simulate(w, IsaKind::Clockhands, WidthClass::W8, Scale::Test).cycles as f64;
        assert!(c < st, "Clockhands ({c}) must beat STRAIGHT ({st})");
        assert!(c < 1.6 * r, "Clockhands within range of RISC ({c} vs {r})");
    }
}
