//! Parallel experiment driver.
//!
//! Every table/figure decomposes into independent `(workload, isa,
//! width)` jobs — separate interpreter runs and separate simulations
//! that share nothing but the read-only trace cache. This module fans
//! such job lists out over [`std::thread::scope`] workers.
//!
//! The worker count is a process-wide setting ([`set_jobs`], the
//! `figures` binary's `--jobs` flag) defaulting to
//! [`std::thread::available_parallelism`]. Output ordering is the
//! caller's: [`par_map`] returns results in item order no matter which
//! worker computed what, so rendered experiments are byte-identical to
//! a serial run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// 0 means "not set": fall back to available parallelism.
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the worker count for subsequent parallel fan-outs.
///
/// `0` restores the default (available parallelism).
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// The effective worker count: the last [`set_jobs`] value, or the
/// machine's available parallelism when unset.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Applies `f` to every item on a pool of [`jobs`] scoped workers and
/// returns the results **in item order**.
///
/// Items are claimed through an atomic cursor, so workers stay busy
/// regardless of per-item cost skew. A panicking job (e.g. a checksum
/// mismatch inside a trace computation) propagates out of the scope.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let workers = jobs().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);
    let slots = Mutex::new(slots);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(item);
                slots.lock().expect("result slots")[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .expect("result slots")
        .into_iter()
        .map(|r| r.expect("every job completed"))
        .collect()
}

/// Applies `f` to every item on a pool of [`jobs`] scoped workers,
/// discarding results (used to warm the trace/simulation caches).
pub fn par_for_each<T: Sync>(items: &[T], f: impl Fn(&T) + Sync) {
    par_map(items, |item| {
        f(item);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_item_order() {
        set_jobs(4);
        let items: Vec<u64> = (0..64).collect();
        let doubled = par_map(&items, |&x| {
            // Skew per-item cost so completion order differs from item order.
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * 2
        });
        set_jobs(0);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_matches() {
        set_jobs(1);
        let items = [1, 2, 3];
        assert_eq!(par_map(&items, |&x| x + 1), vec![2, 3, 4]);
        set_jobs(0);
    }

    #[test]
    fn jobs_defaults_to_available_parallelism() {
        set_jobs(0);
        assert!(jobs() >= 1);
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
    }
}
