//! The sweep-service wire protocol and client (`ch-serve`'s dialect).
//!
//! The protocol is JSONL: each request and each response is one JSON
//! object on one `\n`-terminated line over a plain TCP stream. The
//! normative field-by-field specification lives in `docs/PROTOCOL.md`;
//! this module is the single implementation both sides share — the
//! `ch-serve` server parses [`Request`] and renders [`Response`], while
//! [`Client`] (used by the `ch-serve` CLI and by `figures --server`)
//! does the reverse. Round-tripping is covered by unit tests here, so
//! the documented protocol stays testable against its implementation.
//!
//! Simulation results travel as full [`Counters`] objects
//! ([`Counters::to_json`], exact-integer JSON), which is what makes the
//! `figures --server` mode byte-identical to in-process rendering: the
//! client reconstructs precisely the counters the server's engine
//! produced.
//!
//! [`set_server`] installs a process-wide server address; while one is
//! set, [`crate::simulate`] routes cache misses to that server instead
//! of the in-process engine (cache hits are still served locally — the
//! local [`crate::cache::KeyedOnce`] then acts as a client-side result
//! cache).

use ch_common::json::Json;
use ch_common::stats::Counters;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;

/// Process-wide sweep-server address used by [`crate::simulate`]
/// (`None` = simulate in-process).
static SERVER: Mutex<Option<String>> = Mutex::new(None);

/// Routes subsequent simulation cache misses to the sweep server at
/// `addr` (e.g. `"127.0.0.1:7878"`), or back in-process with `None`.
/// This is the `figures --server ADDR` switch.
pub fn set_server(addr: Option<String>) {
    *SERVER.lock().expect("server address lock") = addr;
}

/// The currently configured sweep-server address, if any.
pub fn server() -> Option<String> {
    SERVER.lock().expect("server address lock").clone()
}

/// A parsed request record (one JSONL line, client → server).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping {
        /// Client-chosen id echoed in the response.
        id: u64,
    },
    /// One simulation.
    Sim(SimRequest),
    /// A cross-product of simulations, streamed back as they finish.
    Sweep(SweepRequest),
    /// Server statistics snapshot.
    Stats {
        /// Client-chosen id echoed in the response.
        id: u64,
    },
}

/// The `sim` request: one `(workload, isa, width, scale, encoding,
/// engine)` configuration. Fields are raw strings — the server
/// normalizes them to a canonical config key (accepting the documented
/// aliases).
#[derive(Debug, Clone, PartialEq)]
pub struct SimRequest {
    /// Client-chosen id echoed in the response.
    pub id: u64,
    /// Workload name (`coremark`/`bzip2`/`mcf`/`lbm`/`xz`).
    pub workload: String,
    /// ISA name (`riscv`/`straight`/`clockhands` or aliases).
    pub isa: String,
    /// Machine width (`4f`/`6f`/`8f`/`12f`/`16f` or aliases).
    pub width: String,
    /// Problem size (`test`/`small`/`full`); defaults to `test`.
    pub scale: String,
    /// Binary encoding variant (`fixed`/`compressed`); defaults to
    /// `fixed`, the abstract-PC-compatible layout.
    pub encoding: String,
    /// Engine (`fast`/`reference`/`poison`); defaults to `fast`.
    pub engine: String,
    /// Per-request timeout in ms; `0` means the server default.
    pub timeout_ms: u64,
}

/// The `sweep` request: the cross product `workloads × isas × widths`
/// at one scale on one engine. Empty lists mean "all known values".
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// Client-chosen id echoed on every streamed record.
    pub id: u64,
    /// Workload names (empty = all five).
    pub workloads: Vec<String>,
    /// ISA names (empty = all three).
    pub isas: Vec<String>,
    /// Width labels (empty = all five).
    pub widths: Vec<String>,
    /// Problem size (`test`/`small`/`full`); defaults to `test`.
    pub scale: String,
    /// Binary encoding variant (`fixed`/`compressed`); defaults to
    /// `fixed`. One sweep covers one encoding — sweeping both is two
    /// requests, so every streamed key stays inside one variant.
    pub encoding: String,
    /// Engine (`fast`/`reference`/`poison`); defaults to `fast`.
    pub engine: String,
    /// Whole-sweep timeout in ms; `0` means the server default.
    pub timeout_ms: u64,
}

/// A parsed response record (one JSONL line, server → client).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to `ping`.
    Pong {
        /// Echo of the request id.
        id: u64,
    },
    /// One finished simulation (reply to `sim`; streamed for `sweep`).
    /// Boxed: the embedded [`Counters`] dwarf every other variant.
    Result(Box<ResultRecord>),
    /// End of a `sweep` stream.
    Done {
        /// Echo of the request id.
        id: u64,
        /// Result records streamed before this marker.
        results: u64,
        /// Error records streamed before this marker.
        errors: u64,
    },
    /// Reply to `stats`.
    Stats {
        /// Echo of the request id.
        id: u64,
        /// The snapshot.
        stats: ServerStats,
    },
    /// A structured failure (whole-request, or per-config in a sweep).
    Error(ErrorRecord),
}

/// One finished simulation on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRecord {
    /// Echo of the request id.
    pub id: u64,
    /// Canonical config key (`workload/isa/width/scale/encoding/engine`).
    pub key: String,
    /// Whether the server answered from its completed-work cache
    /// (`false` = this request computed or joined an in-flight run).
    pub cached: bool,
    /// Time this request waited at the server, in milliseconds.
    pub wait_ms: f64,
    /// The simulation counters, exactly as the engine produced them.
    pub counters: Counters,
}

/// A structured failure on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorRecord {
    /// Echo of the request id.
    pub id: u64,
    /// Canonical config key, when the failure is config-specific.
    pub key: Option<String>,
    /// Machine-readable code: `bad-request`, `overloaded`, `timeout`,
    /// or `poisoned`.
    pub code: String,
    /// Human-readable detail.
    pub message: String,
    /// For `overloaded`: how long the client should back off before
    /// resubmitting.
    pub retry_after_ms: Option<u64>,
}

/// The `stats` response payload: one snapshot of the server's request,
/// dedup, queue, and latency accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServerStats {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Worker threads simulating.
    pub workers: u64,
    /// Protocol records received (any type).
    pub requests: u64,
    /// Simulation configs requested (a sweep counts each config).
    pub sim_requests: u64,
    /// Configs actually computed by a worker (one per distinct key).
    pub computed: u64,
    /// Config requests answered from completed work.
    pub cache_hits: u64,
    /// Config requests that joined an in-flight computation.
    pub inflight_joins: u64,
    /// Requests rejected with `overloaded` (queue full).
    pub rejected: u64,
    /// Configs whose computation panicked (now memoized as poisoned).
    pub failed: u64,
    /// Requests that hit their timeout while waiting.
    pub timeouts: u64,
    /// Jobs currently queued (not yet running).
    pub queue_depth: u64,
    /// Jobs currently running on workers.
    pub running: u64,
    /// Median request wait over the last 4096 served requests, ms.
    pub p50_ms: f64,
    /// 99th-percentile request wait over the same window, ms.
    pub p99_ms: f64,
    /// `1 - computed / sim_requests`: the share of requested configs
    /// served without running a simulation.
    pub dedup_ratio: f64,
}

fn get_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn get_str_or<'a>(v: &'a Json, key: &str, default: &'a str) -> Result<&'a str, String> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => j
            .as_str()
            .ok_or_else(|| format!("field `{key}` is not a string")),
    }
}

fn get_u64_or(v: &Json, key: &str, default: u64) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => j
            .as_u64()
            .ok_or_else(|| format!("field `{key}` is not a u64")),
    }
}

fn get_list(v: &Json, key: &str) -> Result<Vec<String>, String> {
    match v.get(key) {
        None => Ok(Vec::new()),
        Some(j) => j
            .as_arr()
            .ok_or_else(|| format!("field `{key}` is not an array"))?
            .iter()
            .map(|item| {
                item.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("field `{key}` has a non-string element"))
            })
            .collect(),
    }
}

fn str_list(items: &[String]) -> Json {
    Json::Arr(items.iter().map(|s| Json::Str(s.clone())).collect())
}

impl Request {
    /// Parses one request line. Unknown `type`s and malformed fields are
    /// errors (the server answers them with a `bad-request` record).
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line)?;
        let id = get_u64_or(&v, "id", 0)?;
        match get_str(&v, "type")? {
            "ping" => Ok(Request::Ping { id }),
            "stats" => Ok(Request::Stats { id }),
            "sim" => Ok(Request::Sim(SimRequest {
                id,
                workload: get_str(&v, "workload")?.to_string(),
                isa: get_str(&v, "isa")?.to_string(),
                width: get_str(&v, "width")?.to_string(),
                scale: get_str_or(&v, "scale", "test")?.to_string(),
                encoding: get_str_or(&v, "encoding", "fixed")?.to_string(),
                engine: get_str_or(&v, "engine", "fast")?.to_string(),
                timeout_ms: get_u64_or(&v, "timeout_ms", 0)?,
            })),
            "sweep" => Ok(Request::Sweep(SweepRequest {
                id,
                workloads: get_list(&v, "workloads")?,
                isas: get_list(&v, "isas")?,
                widths: get_list(&v, "widths")?,
                scale: get_str_or(&v, "scale", "test")?.to_string(),
                encoding: get_str_or(&v, "encoding", "fixed")?.to_string(),
                engine: get_str_or(&v, "engine", "fast")?.to_string(),
                timeout_ms: get_u64_or(&v, "timeout_ms", 0)?,
            })),
            other => Err(format!("unknown request type `{other}`")),
        }
    }

    /// Renders the request as one JSONL line (without the newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Ping { id } => format!("{{\"type\":\"ping\",\"id\":{id}}}"),
            Request::Stats { id } => format!("{{\"type\":\"stats\",\"id\":{id}}}"),
            Request::Sim(r) => {
                let mut obj = vec![
                    ("type".to_string(), Json::Str("sim".into())),
                    ("id".to_string(), Json::Int(r.id as i64)),
                    ("workload".to_string(), Json::Str(r.workload.clone())),
                    ("isa".to_string(), Json::Str(r.isa.clone())),
                    ("width".to_string(), Json::Str(r.width.clone())),
                    ("scale".to_string(), Json::Str(r.scale.clone())),
                    ("encoding".to_string(), Json::Str(r.encoding.clone())),
                    ("engine".to_string(), Json::Str(r.engine.clone())),
                ];
                obj.push(("timeout_ms".to_string(), Json::Int(r.timeout_ms as i64)));
                Json::Obj(obj).render()
            }
            Request::Sweep(r) => Json::Obj(vec![
                ("type".to_string(), Json::Str("sweep".into())),
                ("id".to_string(), Json::Int(r.id as i64)),
                ("workloads".to_string(), str_list(&r.workloads)),
                ("isas".to_string(), str_list(&r.isas)),
                ("widths".to_string(), str_list(&r.widths)),
                ("scale".to_string(), Json::Str(r.scale.clone())),
                ("encoding".to_string(), Json::Str(r.encoding.clone())),
                ("engine".to_string(), Json::Str(r.engine.clone())),
                ("timeout_ms".to_string(), Json::Int(r.timeout_ms as i64)),
            ])
            .render(),
        }
    }
}

impl Response {
    /// Parses one response line.
    pub fn parse(line: &str) -> Result<Response, String> {
        let v = Json::parse(line)?;
        let id = get_u64_or(&v, "id", 0)?;
        match get_str(&v, "type")? {
            "pong" => Ok(Response::Pong { id }),
            "done" => Ok(Response::Done {
                id,
                results: get_u64_or(&v, "results", 0)?,
                errors: get_u64_or(&v, "errors", 0)?,
            }),
            "result" => Ok(Response::Result(Box::new(ResultRecord {
                id,
                key: get_str(&v, "key")?.to_string(),
                cached: v
                    .get("cached")
                    .and_then(Json::as_bool)
                    .ok_or("missing bool field `cached`")?,
                wait_ms: v
                    .get("wait_ms")
                    .and_then(Json::as_f64)
                    .ok_or("missing number field `wait_ms`")?,
                counters: Counters::from_json(
                    v.get("counters").ok_or("missing field `counters`")?,
                )?,
            }))),
            "stats" => {
                let g = |key: &str| get_u64_or(&v, key, u64::MAX);
                let f = |key: &str| -> Result<f64, String> {
                    v.get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("missing number field `{key}`"))
                };
                let stats = ServerStats {
                    uptime_ms: g("uptime_ms")?,
                    workers: g("workers")?,
                    requests: g("requests")?,
                    sim_requests: g("sim_requests")?,
                    computed: g("computed")?,
                    cache_hits: g("cache_hits")?,
                    inflight_joins: g("inflight_joins")?,
                    rejected: g("rejected")?,
                    failed: g("failed")?,
                    timeouts: g("timeouts")?,
                    queue_depth: g("queue_depth")?,
                    running: g("running")?,
                    p50_ms: f("p50_ms")?,
                    p99_ms: f("p99_ms")?,
                    dedup_ratio: f("dedup_ratio")?,
                };
                if stats.uptime_ms == u64::MAX {
                    return Err("missing field `uptime_ms`".into());
                }
                Ok(Response::Stats { id, stats })
            }
            "error" => Ok(Response::Error(ErrorRecord {
                id,
                key: v.get("key").and_then(Json::as_str).map(str::to_string),
                code: get_str(&v, "code")?.to_string(),
                message: get_str(&v, "message")?.to_string(),
                retry_after_ms: v.get("retry_after_ms").and_then(Json::as_u64),
            })),
            other => Err(format!("unknown response type `{other}`")),
        }
    }

    /// Renders the response as one JSONL line (without the newline).
    pub fn to_line(&self) -> String {
        match self {
            Response::Pong { id } => format!("{{\"type\":\"pong\",\"id\":{id}}}"),
            Response::Done {
                id,
                results,
                errors,
            } => format!(
                "{{\"type\":\"done\",\"id\":{id},\"results\":{results},\"errors\":{errors}}}"
            ),
            Response::Result(r) => {
                let mut s = String::with_capacity(1536);
                let _ = write!(
                    s,
                    "{{\"type\":\"result\",\"id\":{},\"key\":\"{}\",\"cached\":{},\"wait_ms\":{:.3},\"counters\":",
                    r.id, r.key, r.cached, r.wait_ms
                );
                s.push_str(&r.counters.to_json());
                s.push('}');
                s
            }
            Response::Stats { id, stats } => {
                let t = stats;
                format!(
                    "{{\"type\":\"stats\",\"id\":{id},\"uptime_ms\":{},\"workers\":{},\
                     \"requests\":{},\"sim_requests\":{},\"computed\":{},\"cache_hits\":{},\
                     \"inflight_joins\":{},\"rejected\":{},\"failed\":{},\"timeouts\":{},\
                     \"queue_depth\":{},\"running\":{},\"p50_ms\":{:.3},\"p99_ms\":{:.3},\
                     \"dedup_ratio\":{:.4}}}",
                    t.uptime_ms,
                    t.workers,
                    t.requests,
                    t.sim_requests,
                    t.computed,
                    t.cache_hits,
                    t.inflight_joins,
                    t.rejected,
                    t.failed,
                    t.timeouts,
                    t.queue_depth,
                    t.running,
                    t.p50_ms,
                    t.p99_ms,
                    t.dedup_ratio,
                )
            }
            Response::Error(e) => {
                let mut obj = vec![
                    ("type".to_string(), Json::Str("error".into())),
                    ("id".to_string(), Json::Int(e.id as i64)),
                ];
                if let Some(key) = &e.key {
                    obj.push(("key".to_string(), Json::Str(key.clone())));
                }
                obj.push(("code".to_string(), Json::Str(e.code.clone())));
                obj.push(("message".to_string(), Json::Str(e.message.clone())));
                if let Some(ms) = e.retry_after_ms {
                    obj.push(("retry_after_ms".to_string(), Json::Int(ms as i64)));
                }
                Json::Obj(obj).render()
            }
        }
    }
}

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP connection failed or closed early.
    Io(std::io::Error),
    /// The server sent a line this client cannot parse, or a response
    /// that does not answer the outstanding request.
    Protocol(String),
    /// The server answered with a structured `error` record.
    Server(ErrorRecord),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(e) => {
                write!(f, "server error [{}] {}", e.code, e.message)?;
                if let Some(ms) = e.retry_after_ms {
                    write!(f, " (retry after {ms} ms)")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking JSONL client for the sweep service.
///
/// One request is outstanding at a time per connection (the protocol is
/// strictly request → response(s)); open several clients for
/// concurrency — the server handles each connection on its own thread.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a sweep server (`host:port`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            next_id: 1,
        })
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        let mut line = req.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        Ok(())
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        Response::parse(line.trim_end()).map_err(ClientError::Protocol)
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Id of the most recently sent request (0 before the first send).
    /// Lets callers that re-render response records (the `ch-serve`
    /// CLI) echo the id the server actually used.
    pub fn last_id(&self) -> u64 {
        self.next_id - 1
    }

    /// Round-trips a `ping`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Ping { id })?;
        match self.read_response()? {
            Response::Pong { id: rid } if rid == id => Ok(()),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Submits one simulation and blocks for its result.
    pub fn sim(&mut self, mut req: SimRequest) -> Result<ResultRecord, ClientError> {
        req.id = self.fresh_id();
        let id = req.id;
        self.send(&Request::Sim(req))?;
        match self.read_response()? {
            Response::Result(r) if r.id == id => Ok(*r),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected result, got {other:?}"
            ))),
        }
    }

    /// Submits a sweep and streams its records to `on_record` in the
    /// order the server finishes them. Returns the final
    /// `(results, errors)` tallies from the `done` marker.
    pub fn sweep(
        &mut self,
        mut req: SweepRequest,
        mut on_record: impl FnMut(Result<ResultRecord, ErrorRecord>),
    ) -> Result<(u64, u64), ClientError> {
        req.id = self.fresh_id();
        let id = req.id;
        self.send(&Request::Sweep(req))?;
        loop {
            match self.read_response()? {
                Response::Result(r) if r.id == id => on_record(Ok(*r)),
                Response::Error(e) if e.id == id && e.key.is_some() => on_record(Err(e)),
                Response::Error(e) => return Err(ClientError::Server(e)),
                Response::Done {
                    id: rid,
                    results,
                    errors,
                } if rid == id => return Ok((results, errors)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected sweep record {other:?}"
                    )))
                }
            }
        }
    }

    /// Fetches the server's statistics snapshot.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Stats { id })?;
        match self.read_response()? {
            Response::Stats { id: rid, stats } if rid == id => Ok(stats),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }
}

/// Fetches one simulation from the configured server, retrying
/// `overloaded` rejections with the server-suggested backoff. Panics on
/// any other failure — `figures --server` must abort loudly rather than
/// silently fall back to a half-local run.
pub(crate) fn fetch_sim(
    addr: &str,
    workload: ch_workloads::Workload,
    isa: ch_common::IsaKind,
    width: ch_common::config::WidthClass,
    scale: ch_workloads::Scale,
    encoding: ch_common::EncodingVariant,
) -> Counters {
    let req = SimRequest {
        id: 0,
        workload: workload.name().to_string(),
        isa: isa.name().to_string(),
        width: width.label().to_string(),
        scale: scale.name().to_string(),
        encoding: encoding.name().to_string(),
        engine: "fast".to_string(),
        timeout_ms: 0,
    };
    let mut backoff = std::time::Duration::from_millis(25);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let mut client = Client::connect(addr)
            .unwrap_or_else(|e| panic!("sweep server {addr} unreachable: {e}"));
        match client.sim(req.clone()) {
            Ok(r) => return r.counters,
            Err(ClientError::Server(e)) if e.code == "overloaded" => {
                if std::time::Instant::now() >= deadline {
                    panic!("sweep server {addr} overloaded for 60s: {}", e.message);
                }
                let wait = e
                    .retry_after_ms
                    .map(std::time::Duration::from_millis)
                    .unwrap_or(backoff);
                std::thread::sleep(wait);
                backoff = (backoff * 2).min(std::time::Duration::from_secs(1));
            }
            Err(e) => panic!(
                "sweep server {addr} failed on {}/{}/{}: {e}",
                workload.name(),
                isa.name(),
                width.label()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request::Ping { id: 7 },
            Request::Stats { id: 8 },
            Request::Sim(SimRequest {
                id: 3,
                workload: "xz".into(),
                isa: "clockhands".into(),
                width: "8f".into(),
                scale: "test".into(),
                encoding: "compressed".into(),
                engine: "fast".into(),
                timeout_ms: 5000,
            }),
            Request::Sweep(SweepRequest {
                id: 4,
                workloads: vec!["xz".into(), "mcf".into()],
                isas: vec![],
                widths: vec!["4f".into()],
                scale: "small".into(),
                encoding: "fixed".into(),
                engine: "reference".into(),
                timeout_ms: 0,
            }),
        ];
        for req in reqs {
            let line = req.to_line();
            assert_eq!(Request::parse(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn request_defaults_apply() {
        let r =
            Request::parse(r#"{"type":"sim","workload":"xz","isa":"ch","width":"8f"}"#).unwrap();
        match r {
            Request::Sim(s) => {
                assert_eq!(s.id, 0);
                assert_eq!(s.scale, "test");
                assert_eq!(s.encoding, "fixed");
                assert_eq!(s.engine, "fast");
                assert_eq!(s.timeout_ms, 0);
            }
            other => panic!("expected sim, got {other:?}"),
        }
        let r = Request::parse(r#"{"type":"sweep"}"#).unwrap();
        match r {
            Request::Sweep(s) => {
                assert!(s.workloads.is_empty() && s.isas.is_empty() && s.widths.is_empty());
            }
            other => panic!("expected sweep, got {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_rejected() {
        for bad in [
            "not json",
            r#"{"type":"launch-missiles"}"#,
            r#"{"type":"sim","workload":"xz","isa":"ch"}"#, // no width
            r#"{"type":"sim","workload":1,"isa":"ch","width":"8f"}"#,
            r#"{"type":"sweep","workloads":"xz"}"#, // not an array
        ] {
            assert!(Request::parse(bad).is_err(), "{bad} must not parse");
        }
    }

    #[test]
    fn responses_roundtrip() {
        let mut counters = Counters::new();
        counters.cycles = 123456;
        counters.committed = 999;
        counters.stalls.drain = 5;
        let resps = [
            Response::Pong { id: 1 },
            Response::Done {
                id: 2,
                results: 74,
                errors: 1,
            },
            Response::Result(Box::new(ResultRecord {
                id: 3,
                key: "xz/clockhands/8f/test/fixed/fast".into(),
                cached: true,
                wait_ms: 0.125,
                counters,
            })),
            Response::Stats {
                id: 4,
                stats: ServerStats {
                    uptime_ms: 1000,
                    workers: 8,
                    requests: 10,
                    sim_requests: 150,
                    computed: 75,
                    cache_hits: 70,
                    inflight_joins: 5,
                    rejected: 0,
                    failed: 1,
                    timeouts: 2,
                    queue_depth: 3,
                    running: 4,
                    p50_ms: 1.5,
                    p99_ms: 20.25,
                    dedup_ratio: 0.5,
                },
            },
            Response::Error(ErrorRecord {
                id: 5,
                key: Some("xz/clockhands/8f/test/fixed/poison".into()),
                code: "poisoned".into(),
                message: "injected panic".into(),
                retry_after_ms: None,
            }),
            Response::Error(ErrorRecord {
                id: 6,
                key: None,
                code: "overloaded".into(),
                message: "queue full".into(),
                retry_after_ms: Some(50),
            }),
        ];
        for resp in resps {
            let line = resp.to_line();
            assert_eq!(Response::parse(&line).unwrap(), resp, "{line}");
        }
    }

    #[test]
    fn server_address_is_settable() {
        assert_eq!(server(), None);
        set_server(Some("127.0.0.1:7878".into()));
        assert_eq!(server().as_deref(), Some("127.0.0.1:7878"));
        set_server(None);
        assert_eq!(server(), None);
    }
}
