//! Profiling helper: runs the fast engine serially over the full figure
//! sweep (traces pre-warmed, nothing else timed). Pair it with a
//! sampling profiler to see where the engine's time goes, e.g.:
//!
//! ```text
//! gprofng collect app -o /tmp/prof.er target/release/prof
//! gprofng display text -functions /tmp/prof.er
//! ```

use ch_bench::{branch_profile, set_jobs, soa_trace, sweep};
use ch_common::config::{MachineConfig, WidthClass};
use ch_common::IsaKind;
use ch_sim::run_fast_profiled;
use ch_workloads::{Scale, Workload};
use std::time::Instant;

fn main() {
    set_jobs(1);
    let scale = match std::env::args().nth(1).as_deref() {
        Some("test") => Scale::Test,
        _ => Scale::Small,
    };
    let pairs: Vec<(Workload, IsaKind)> = Workload::ALL
        .iter()
        .flat_map(|&w| IsaKind::ALL.map(|isa| (w, isa)))
        .collect();
    sweep(&pairs, |&(w, isa)| {
        soa_trace(w, isa, scale);
        branch_profile(w, isa, scale);
    });
    let reps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    for _ in 0..reps {
        let mut insts = 0u64;
        let mut check = 0u64;
        let t0 = Instant::now();
        for &(w, isa) in &pairs {
            let t = soa_trace(w, isa, scale);
            let p = branch_profile(w, isa, scale);
            for width in WidthClass::ALL {
                insts += t.len() as u64;
                check ^= run_fast_profiled(MachineConfig::preset(width, isa), &t, &p).cycles;
            }
        }
        let wall = t0.elapsed().as_secs_f64();
        println!(
            "fast sweep: {insts} insts, {wall:.2}s, {:.2} Minst/s (check {check})",
            insts as f64 / wall / 1e6
        );
    }
}
