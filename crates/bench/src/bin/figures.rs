//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures [--scale test|small|full] [--jobs N] [--no-verify] [--no-opt]
//!         [--server ADDR] [ids...]
//! ids: table1 table2 table3 fig3 fig4 fig7 fig13 fig14 fig15 fig16 fig17
//!      fig18 ablation stalls trace verify bench
//! ```
//!
//! `--server ADDR` routes every `(workload, isa, width)` simulation to a
//! running `ch-serve` instance at `ADDR` (e.g. `127.0.0.1:7878`) instead
//! of simulating in-process; repeated figure runs then share the
//! server's cache across processes. Counters travel as exact-integer
//! JSON, so the rendered output is byte-identical to an in-process run.
//! Trace-analysis experiments (fig3, fig15–18, trace, verify) still run
//! locally — only timing simulations are served.
//!
//! `bench` (not part of the default run) times the full simulation
//! sweep on the fast engine and the reference engine, writes the
//! `BENCH_<pr>.json` snapshot, and fails if the committed baseline
//! regressed; see `ch_bench::report`.
//!
//! Compiled programs are statically verified (`ch-verify`) before any
//! experiment runs them; `--no-verify` skips that (faster, but silent
//! on backend dataflow bugs). The `verify` experiment prints the lint
//! summary table (dead relays, redundant edge fixes, unreachable code)
//! and ratchets it against the committed per-workload baseline
//! (`CH_VERIFY_SKIP_CHECK=1` to re-baseline).
//!
//! `--no-opt` compiles every workload with the backend optimization
//! layer off (`OptConfig::none()`) — the escape hatch for bisecting a
//! miscompile down to one optimization pass. `opt` (not part of the
//! default run) measures both configurations side by side and writes
//! the `BENCH_8.json` snapshot; see `ch_bench::optreport`. `density`
//! (not part of the default run) measures static code size and fetch
//! behaviour for every ISA under both binary encodings and writes the
//! `BENCH_9.json` snapshot; see `ch_bench::densityreport`.
//!
//! With no ids, everything runs (in paper order). Independent
//! `(workload, isa, width)` jobs inside each experiment are fanned out
//! over `--jobs` worker threads (default: available parallelism);
//! results land in process-wide caches, so the rendered output is
//! byte-identical at any worker count. Per-experiment wall time, busy
//! time, and achieved speedup go to stderr, keeping stdout clean.

use ch_bench as bench;
use ch_workloads::Scale;

fn main() {
    let mut scale = Scale::Test;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let value = args.next();
                scale = match value.as_deref() {
                    Some("test") => Scale::Test,
                    Some("small") => Scale::Small,
                    Some("full") => Scale::Full,
                    other => {
                        let got = other.unwrap_or("nothing");
                        eprintln!("unknown scale `{got}` (test|small|full)");
                        std::process::exit(2);
                    }
                }
            }
            "--jobs" => {
                let value = args.next();
                match value.as_deref().map(str::parse::<usize>) {
                    Some(Ok(n)) if n > 0 => bench::set_jobs(n),
                    _ => {
                        let got = value.as_deref().unwrap_or("nothing");
                        eprintln!("--jobs needs a positive integer, got `{got}`");
                        std::process::exit(2);
                    }
                }
            }
            "--no-verify" => ch_workloads::set_verify(false),
            "--no-opt" => ch_compiler::set_optimize(false),
            "--server" => match args.next() {
                Some(addr) if !addr.is_empty() => {
                    if let Err(e) = bench::remote::Client::connect(&addr)
                        .map_err(bench::remote::ClientError::Io)
                        .and_then(|mut c| c.ping())
                    {
                        eprintln!("--server {addr}: {e}");
                        std::process::exit(2);
                    }
                    bench::remote::set_server(Some(addr));
                }
                _ => {
                    eprintln!("--server needs an address (host:port)");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "figures [--scale test|small|full] [--jobs N] [--no-verify] \
                     [--no-opt] [--server ADDR] [ids...]"
                );
                return;
            }
            id => ids.push(id.to_string()),
        }
    }
    let all = [
        "table1", "table2", "table3", "fig3", "fig4", "fig7", "fig13", "fig14", "fig15", "fig16",
        "fig17", "fig18", "ablation", "stalls", "trace", "verify",
    ];
    if ids.is_empty() {
        ids = all.iter().map(|s| s.to_string()).collect();
    }
    eprintln!("figures: {} worker thread(s)", bench::jobs());
    let ((), total) = bench::timed(|| {
        for id in &ids {
            let (out, timing) = bench::timed(|| match id.as_str() {
                "table1" => bench::table1(),
                "table2" => bench::table2(),
                "table3" => bench::table3(),
                "fig3" => bench::fig3(scale),
                "fig4" => bench::fig4(scale),
                "fig7" => bench::fig7(scale),
                "fig13" => bench::fig13(scale),
                "fig14" => bench::fig14(scale),
                "fig15" => bench::fig15(scale),
                "fig16" => bench::fig16(scale),
                "fig17" => bench::fig17(scale),
                "fig18" => bench::fig18(scale),
                "ablation" => bench::ablation(scale),
                "stalls" => bench::stalls(scale),
                "trace" => bench::traces(scale),
                "verify" => bench::verify_lints(scale),
                "bench" => bench::bench_experiment(scale),
                "opt" => bench::opt_experiment(scale),
                "density" => bench::density_experiment(scale),
                other => {
                    eprintln!(
                        "unknown experiment `{other}` (known: {all:?}, plus `bench`, `opt`, \
                         and `density`)"
                    );
                    std::process::exit(2);
                }
            });
            println!("{out}");
            eprintln!("[timing] {id:<10} {timing}");
        }
    });
    eprintln!("[timing] {:<10} {total}", "total");
}
