//! The `figures opt` experiment: what the shared backend optimizations
//! buy on the rotating-register ISAs, as a `BENCH_8.json` snapshot.
//!
//! Every workload is compiled twice for Clockhands and STRAIGHT — once
//! with the full [`OptConfig`] pipeline (liveness-driven hand
//! assignment, relay minimization, distance-aware scheduling) and once
//! with [`OptConfig::none`], the conservative pre-optimization backend.
//! Both variants are statically verified (`ch-verify`, errors fatal),
//! functionally executed (checksum-validated against the Rust
//! reference), and timed on the 8-wide Table 2 machine. The snapshot
//! records, per workload × ISA:
//!
//! * static code size and the relay-slack lints (dead relays,
//!   redundant edge fixes) of both variants;
//! * committed instructions, cycles, and IPC at W8 for both variants.
//!
//! The deltas are the paper's motivation made measurable: rename-free
//! ISAs pay for distance addressing in relay instructions, and the
//! optimization layer claws that overhead back without touching the
//! microarchitecture. The per-process caches in `lib.rs` are keyed by
//! workload alone, so this module compiles and simulates directly —
//! both variants must be measured fresh, never through a cache that
//! only knows the process-wide configuration.

use crate::{jobs, par_map};
use ch_common::config::{MachineConfig, WidthClass};
use ch_common::IsaKind;
use ch_compiler::backend::opt::OptConfig;
use ch_sim::{run_fast_profiled, BranchProfile, SoaTrace};
use ch_workloads::{Scale, Workload};
use std::fmt::Write as _;

/// The PR this snapshot format belongs to (names the JSON file).
pub const PR: u32 = 8;

/// Per-ISA instruction budget for the functional run.
const LIMIT: u64 = 2_000_000_000;

/// One compiled-and-measured variant of one workload on one ISA.
struct Row {
    /// Static instructions in the emitted program.
    insts: usize,
    /// `W-DEAD-RELAY` lints: relay `mv`s provably never read.
    dead_relays: usize,
    /// `W-REDUNDANT-FIX` lints: edge-fill writes provably never read.
    redundant_fixes: usize,
    /// Instructions committed by the functional run.
    committed: u64,
    /// Cycles on the 8-wide machine.
    cycles: u64,
}

impl Row {
    fn ipc(&self) -> f64 {
        self.committed as f64 / self.cycles as f64
    }
}

/// Compiles, verifies, executes, and times one (workload, ISA, config)
/// combination. Panics on any compile, verify, or checksum failure —
/// the snapshot must never publish numbers for a wrong program.
fn measure(w: Workload, scale: Scale, isa: IsaKind, opt: &OptConfig) -> Row {
    let ctx = || format!("{}/{}/{opt:?}", w.name(), isa.tag());

    let m = ch_compiler::build_ir(&w.source(scale))
        .unwrap_or_else(|e| panic!("{}: frontend failed: {e}", ctx()));
    let vopts = ch_verify::Options::default();
    let (report, trace, exit_value, committed) = match isa {
        IsaKind::Clockhands => {
            let p = ch_compiler::backend::clockhands::compile_with(&m, opt)
                .unwrap_or_else(|e| panic!("{}: backend failed: {e}", ctx()));
            let report = ch_verify::verify_clockhands(&p, &vopts);
            let mut cpu = clockhands::interp::Interpreter::new(p)
                .unwrap_or_else(|e| panic!("{}: bad program: {e}", ctx()));
            let (t, r) = cpu
                .trace(LIMIT)
                .unwrap_or_else(|e| panic!("{}: execution failed: {e}", ctx()));
            (report, t, r.exit_value, r.committed)
        }
        IsaKind::Straight => {
            let p = ch_compiler::backend::straight::compile_with(&m, opt)
                .unwrap_or_else(|e| panic!("{}: backend failed: {e}", ctx()));
            let report = ch_verify::verify_straight(&p, &vopts);
            let mut cpu = ch_baselines::straight::interp::Interpreter::new(p)
                .unwrap_or_else(|e| panic!("{}: bad program: {e}", ctx()));
            let (t, r) = cpu
                .trace(LIMIT)
                .unwrap_or_else(|e| panic!("{}: execution failed: {e}", ctx()));
            (report, t, r.exit_value, r.committed)
        }
        IsaKind::Riscv => unreachable!("opt experiment covers the rotating-register ISAs"),
    };
    assert!(
        report.is_clean(),
        "{}: verifier errors:\n{}",
        ctx(),
        report.render()
    );
    let expect = w.reference(scale);
    assert!(
        exit_value == expect,
        "{}: checksum {exit_value:#x} != reference {expect:#x}",
        ctx()
    );
    let insts: usize = report.functions.iter().map(|f| f.insts).sum();
    let cfg = MachineConfig::preset(WidthClass::W8, isa);
    let soa = SoaTrace::new(trace.iter());
    let profile = BranchProfile::new(&cfg, &soa);
    let counters = run_fast_profiled(cfg, &soa, &profile);
    Row {
        insts,
        dead_relays: report.dead_relays(),
        redundant_fixes: report.redundant_fixes(),
        committed,
        cycles: counters.cycles,
    }
}

/// The ISAs the optimization layer applies to, in render order.
const ISAS: [IsaKind; 2] = [IsaKind::Clockhands, IsaKind::Straight];

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

/// Measures every workload × ISA with and without the optimization
/// layer and renders the `BENCH_8.json` snapshot.
pub fn opt_json(scale: Scale) -> String {
    let combos: Vec<(Workload, IsaKind, bool)> = Workload::ALL
        .iter()
        .flat_map(|&w| {
            ISAS.into_iter()
                .flat_map(move |isa| [(w, isa, true), (w, isa, false)])
        })
        .collect();
    let rows = par_map(&combos, |&(w, isa, on)| {
        let opt = if on {
            OptConfig::full()
        } else {
            OptConfig::none()
        };
        measure(w, scale, isa, &opt)
    });
    let row = |w: Workload, isa: IsaKind, on: bool| -> &Row {
        let at = combos
            .iter()
            .position(|&(cw, ci, con)| cw == w && ci == isa && con == on)
            .unwrap();
        &rows[at]
    };

    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"pr\": {PR},");
    let _ = writeln!(s, "  \"scale\": \"{}\",", scale_name(scale));
    let _ = writeln!(s, "  \"jobs\": {},", jobs());
    let _ = writeln!(s, "  \"width\": \"8f\",");
    for (ii, &isa) in ISAS.iter().enumerate() {
        let total = |on: bool, f: &dyn Fn(&Row) -> usize| -> usize {
            Workload::ALL.iter().map(|&w| f(row(w, isa, on))).sum()
        };
        let name = match isa {
            IsaKind::Clockhands => "clockhands",
            _ => "straight",
        };
        let _ = writeln!(s, "  \"{name}\": {{");
        let _ = writeln!(s, "    \"insts\": {},", total(true, &|r| r.insts));
        let _ = writeln!(s, "    \"insts_noopt\": {},", total(false, &|r| r.insts));
        let _ = writeln!(
            s,
            "    \"dead_relays\": {},",
            total(true, &|r| r.dead_relays)
        );
        let _ = writeln!(
            s,
            "    \"redundant_fixes\": {},",
            total(true, &|r| r.redundant_fixes)
        );
        let _ = writeln!(s, "    \"workloads\": [");
        for (wi, &w) in Workload::ALL.iter().enumerate() {
            let (o, n) = (row(w, isa, true), row(w, isa, false));
            let _ = writeln!(
                s,
                "      {{\"name\": \"{}\", \"insts\": {}, \"insts_noopt\": {}, \
                 \"dead_relays\": {}, \"redundant_fixes\": {}, \
                 \"cycles\": {}, \"cycles_noopt\": {}, \
                 \"ipc\": {:.4}, \"ipc_noopt\": {:.4}}}{}",
                w.name(),
                o.insts,
                n.insts,
                o.dead_relays,
                o.redundant_fixes,
                o.cycles,
                n.cycles,
                o.ipc(),
                n.ipc(),
                if wi + 1 < Workload::ALL.len() {
                    ","
                } else {
                    ""
                }
            );
        }
        let _ = writeln!(s, "    ]");
        let _ = writeln!(s, "  }}{}", if ii + 1 < ISAS.len() { "," } else { "" });
    }
    let _ = writeln!(s, "}}");
    s
}

/// The `figures opt` experiment: measure, snapshot, summarise.
///
/// Writes `BENCH_<pr>.json` into the working directory (the repo root
/// under `just opt-report`) and renders a human-readable delta table.
/// A committed snapshot at a different scale is left untouched unless
/// `CH_BENCH_SKIP_CHECK=1` forces a re-baseline.
pub fn opt_experiment(scale: Scale) -> String {
    let json = opt_json(scale);
    let path = format!("BENCH_{PR}.json");
    let mut s = String::new();
    let _ = writeln!(s, "Optimization-layer snapshot ({path})");
    let baseline = std::fs::read_to_string(&path).ok();
    let rebaseline = std::env::var_os("CH_BENCH_SKIP_CHECK").is_some();
    let same_scale = baseline
        .as_deref()
        .is_none_or(|b| b.contains(&format!("\"scale\": \"{}\"", scale_name(scale))));
    if same_scale || rebaseline {
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        let _ = writeln!(s, "snapshot written");
    } else {
        let _ = writeln!(
            s,
            "committed snapshot is a different scale: not overwritten \
             (CH_BENCH_SKIP_CHECK=1 to re-baseline)"
        );
    }
    let _ = write!(s, "{}", render_table(&json));
    s
}

/// Renders the per-workload delta table from a snapshot's JSON text.
fn render_table(json: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:<4} {:>6} {:>8} {:>7} {:>9} {:>10} {:>7}",
        "workload", "ISA", "insts", "(no-opt)", "Δinsts", "cycles", "(no-opt)", "Δcyc%"
    );
    let mut isa = "??";
    for line in json.lines() {
        let t = line.trim();
        if t.starts_with("\"clockhands\"") {
            isa = "CH";
        } else if t.starts_with("\"straight\"") {
            isa = "ST";
        }
        let Some(name) = field_str(t, "name") else {
            continue;
        };
        let g = |k: &str| field_num(t, k).unwrap_or(0.0);
        let (i, i0) = (g("insts"), g("insts_noopt"));
        let (c, c0) = (g("cycles"), g("cycles_noopt"));
        let _ = writeln!(
            s,
            "{:<12} {:<4} {:>6} {:>8} {:>7} {:>9} {:>10} {:>6.1}%",
            name,
            isa,
            i,
            i0,
            i - i0,
            c,
            c0,
            (c - c0) / c0 * 100.0
        );
    }
    s
}

fn field_str<'j>(line: &'j str, key: &str) -> Option<&'j str> {
    let pat = format!("\"{key}\": \"");
    let at = line.find(&pat)? + pat.len();
    line[at..].split('"').next()
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
