//! Criterion microbenchmarks over the reproduction's own machinery:
//! compilation, functional emulation, and cycle simulation of the
//! workload kernels, plus the hot predictor structures. These measure
//! the *harness* (how fast the figures regenerate), complementing the
//! `figures` binary which measures the *paper's* quantities.

use ch_common::config::{MachineConfig, WidthClass};
use ch_common::IsaKind;
use ch_sim::cache::Cache;
use ch_sim::tage::Tage;
use ch_sim::Simulator;
use ch_workloads::{Scale, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_compiler(c: &mut Criterion) {
    let mut g = c.benchmark_group("compiler");
    for w in [Workload::Coremark, Workload::Xz] {
        g.bench_function(format!("three_backends/{}", w.name()), |b| {
            let src = w.source(Scale::Test);
            b.iter(|| ch_compiler::compile(black_box(&src)).expect("compiles"));
        });
    }
    g.finish();
}

fn bench_interpreters(c: &mut Criterion) {
    let mut g = c.benchmark_group("interp");
    g.sample_size(10);
    let set = Workload::Xz.compile(Scale::Test).expect("compiles");
    g.bench_function("riscv/xz", |b| {
        b.iter(|| {
            let mut cpu =
                ch_baselines::riscv::interp::Interpreter::new(set.riscv.clone()).expect("valid");
            black_box(cpu.run(1_000_000_000).expect("runs").committed)
        })
    });
    g.bench_function("straight/xz", |b| {
        b.iter(|| {
            let mut cpu = ch_baselines::straight::interp::Interpreter::new(set.straight.clone())
                .expect("valid");
            black_box(cpu.run(1_000_000_000).expect("runs").committed)
        })
    });
    g.bench_function("clockhands/xz", |b| {
        b.iter(|| {
            let mut cpu =
                clockhands::interp::Interpreter::new(set.clockhands.clone()).expect("valid");
            black_box(cpu.run(1_000_000_000).expect("runs").committed)
        })
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    let set = Workload::Xz.compile(Scale::Test).expect("compiles");
    let mut cpu = clockhands::interp::Interpreter::new(set.clockhands).expect("valid");
    let (trace, _) = cpu.trace(1_000_000_000).expect("runs");
    for width in [WidthClass::W4, WidthClass::W8, WidthClass::W16] {
        g.bench_function(format!("clockhands/xz/{}", width.label()), |b| {
            b.iter(|| {
                let mut sim =
                    Simulator::new(MachineConfig::preset(width, IsaKind::Clockhands));
                for i in &trace {
                    sim.step(black_box(i));
                }
                black_box(sim.finish().cycles)
            })
        });
    }
    g.finish();
}

fn bench_predictors(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictors");
    g.bench_function("tage/predict_update", |b| {
        let mut t = Tage::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let pc = 0x1000 + (i % 64) * 4;
            let taken = (i / 7) % 3 != 0;
            let p = t.predict(black_box(pc));
            t.update(pc, taken, p);
            black_box(p)
        })
    });
    g.bench_function("cache/access", |b| {
        let cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
        let mut cache = Cache::new(&cfg.l1d);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x95f1);
            black_box(cache.access(black_box(i & 0xf_ffff)))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_compiler,
    bench_interpreters,
    bench_simulator,
    bench_predictors
);
criterion_main!(benches);
