//! Microbenchmarks over the reproduction's own machinery: compilation,
//! functional emulation, and cycle simulation of the workload kernels,
//! plus the hot predictor structures. These measure the *harness* (how
//! fast the figures regenerate), complementing the `figures` binary
//! which measures the *paper's* quantities.
//!
//! The harness is self-contained (`harness = false`, no crates.io
//! dependency): each benchmark is warmed once, then timed over adaptive
//! batches until ~0.5 s has elapsed, and the per-iteration median,
//! minimum, and mean are printed.
//!
//! Run with `cargo bench -p ch-bench`.

use ch_common::config::{MachineConfig, WidthClass};
use ch_common::IsaKind;
use ch_sim::cache::Cache;
use ch_sim::tage::Tage;
use ch_sim::Simulator;
use ch_workloads::{Scale, Workload};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Times `f` in adaptive batches for ~0.5 s and prints per-iteration stats.
fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    const TARGET: Duration = Duration::from_millis(500);
    black_box(f()); // warm up (fills caches, faults in pages)
    let mut samples: Vec<Duration> = Vec::new();
    let started = Instant::now();
    while started.elapsed() < TARGET && samples.len() < 10_000 {
        let t0 = Instant::now();
        black_box(f());
        samples.push(t0.elapsed());
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<40} {:>12} median {:>12} min {:>12} mean ({} iters)",
        format!("{median:.1?}"),
        format!("{min:.1?}"),
        format!("{mean:.1?}"),
        samples.len()
    );
}

fn bench_compiler() {
    for w in [Workload::Coremark, Workload::Xz] {
        let src = w.source(Scale::Test);
        bench(&format!("compiler/three_backends/{}", w.name()), || {
            ch_compiler::compile(black_box(&src)).expect("compiles")
        });
    }
}

fn bench_interpreters() {
    let set = Workload::Xz.compile(Scale::Test).expect("compiles");
    bench("interp/riscv/xz", || {
        let mut cpu =
            ch_baselines::riscv::interp::Interpreter::new(set.riscv.clone()).expect("valid");
        cpu.run(1_000_000_000).expect("runs").committed
    });
    bench("interp/straight/xz", || {
        let mut cpu =
            ch_baselines::straight::interp::Interpreter::new(set.straight.clone()).expect("valid");
        cpu.run(1_000_000_000).expect("runs").committed
    });
    bench("interp/clockhands/xz", || {
        let mut cpu = clockhands::interp::Interpreter::new(set.clockhands.clone()).expect("valid");
        cpu.run(1_000_000_000).expect("runs").committed
    });
}

fn bench_simulator() {
    let set = Workload::Xz.compile(Scale::Test).expect("compiles");
    let mut cpu = clockhands::interp::Interpreter::new(set.clockhands).expect("valid");
    let (trace, _) = cpu.trace(1_000_000_000).expect("runs");
    for width in [WidthClass::W4, WidthClass::W8, WidthClass::W16] {
        bench(
            &format!("simulator/clockhands/xz/{}", width.label()),
            || {
                let mut sim = Simulator::new(MachineConfig::preset(width, IsaKind::Clockhands));
                for i in &trace {
                    sim.step(black_box(i));
                }
                sim.finish().cycles
            },
        );
    }
}

fn bench_predictors() {
    let mut t = Tage::new();
    let mut i = 0u64;
    bench("predictors/tage/predict_update", || {
        i += 1;
        let pc = 0x1000 + (i % 64) * 4;
        let taken = !(i / 7).is_multiple_of(3);
        let p = t.predict(black_box(pc));
        t.update(pc, taken, p);
        p
    });
    let cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
    let mut cache = Cache::new(&cfg.l1d);
    let mut j = 0u64;
    bench("predictors/cache/access", || {
        j = j.wrapping_add(0x95f1);
        cache.access(black_box(j & 0xf_ffff))
    });
}

fn main() {
    bench_compiler();
    bench_interpreters();
    bench_simulator();
    bench_predictors();
}
