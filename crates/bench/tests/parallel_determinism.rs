//! Determinism under parallelism: `crates/sim/tests/determinism.rs`
//! guarantees the simulator itself is deterministic; these tests extend
//! that guarantee up through the `ch-bench` experiment driver — a table
//! and a figure must render byte-identically at any worker count.

use std::process::Command;

/// Runs the `figures` binary and returns its stdout.
fn figures(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_figures"))
        .args(args)
        .output()
        .expect("figures binary runs");
    assert!(
        out.status.success(),
        "figures {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("figures output is UTF-8")
}

#[test]
fn figures_output_is_byte_identical_across_jobs() {
    // One table and two figures; fig13 exercises the full trace + sim
    // fan-out (5 workloads x 3 ISAs x 5 widths in one process), and the
    // stall-attribution table rides the same 75 cached simulations.
    let serial = figures(&[
        "--scale", "test", "--jobs", "1", "table1", "fig13", "stalls",
    ]);
    let parallel = figures(&[
        "--scale", "test", "--jobs", "4", "table1", "fig13", "stalls",
    ]);
    assert!(serial.contains("Table 1") && serial.contains("Fig. 13"));
    assert!(serial.contains("Stall attribution"));
    assert_eq!(serial, parallel, "--jobs must not change rendered output");
}

#[test]
fn in_process_renders_identically_at_any_worker_count() {
    use ch_workloads::Scale;
    ch_bench::set_jobs(4);
    let parallel = ch_bench::fig7(Scale::Test);
    ch_bench::set_jobs(1);
    let serial = ch_bench::fig7(Scale::Test);
    ch_bench::set_jobs(0);
    assert_eq!(parallel, serial);
}
