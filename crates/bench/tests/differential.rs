//! Differential test: the fast-path engine must be **byte-identical**
//! to the reference simulator — every counter, including the full stall
//! breakdown — on every workload × ISA × width combination, and the
//! cached parallel driver must return the same results at any worker
//! count.
//!
//! This is the correctness bar of the engine restructuring: the fast
//! engine is only allowed to be a faster evaluation order of the same
//! timing model, never a different model.

use ch_bench::{set_jobs, simulate, soa_trace, sweep, trace};
use ch_common::config::{MachineConfig, WidthClass};
use ch_common::IsaKind;
use ch_sim::{run_fast, FastEngine, Simulator, TraceBuffer};
use ch_workloads::{Scale, Workload};

const SCALE: Scale = Scale::Test;

fn reference(w: Workload, isa: IsaKind, width: WidthClass) -> ch_sim::Counters {
    let t = trace(w, isa, SCALE);
    let mut sim = Simulator::new(MachineConfig::preset(width, isa));
    for inst in t.iter() {
        sim.step(inst);
    }
    sim.finish()
}

#[test]
fn fast_engine_matches_reference_on_every_combo() {
    for w in Workload::ALL {
        for isa in IsaKind::ALL {
            let soa = soa_trace(w, isa, SCALE);
            for width in WidthClass::ALL {
                let fast = run_fast(MachineConfig::preset(width, isa), &soa);
                let reference = reference(w, isa, width);
                assert_eq!(
                    fast,
                    reference,
                    "fast engine diverged on {}/{}/{} (stalls: fast {:?} vs ref {:?})",
                    w.name(),
                    isa.tag(),
                    width.label(),
                    fast.stalls,
                    reference.stalls
                );
            }
        }
    }
}

#[test]
fn traced_fast_engine_matches_reference_stamps() {
    // One combo per ISA: stage stamps, not just end-of-run counters.
    for isa in IsaKind::ALL {
        let w = Workload::ALL[0];
        let cfg = MachineConfig::preset(WidthClass::W8, isa);
        let t = trace(w, isa, SCALE);
        let mut sim = Simulator::with_tracer(cfg.clone(), TraceBuffer::new());
        for inst in t.iter() {
            sim.step(inst);
        }
        let ref_counters = sim.finish();
        let ref_records = sim.into_tracer();

        let soa = soa_trace(w, isa, SCALE);
        let (fast_counters, fast_records) =
            FastEngine::with_tracer(cfg, TraceBuffer::new()).run(&soa);

        assert_eq!(fast_counters, ref_counters, "{}/{}", w.name(), isa.tag());
        assert_eq!(
            fast_records.records().len(),
            ref_records.records().len(),
            "{}/{}",
            w.name(),
            isa.tag()
        );
        for (f, r) in fast_records.records().iter().zip(ref_records.records()) {
            assert_eq!(f, r, "stamp mismatch on {}/{}", w.name(), isa.tag());
        }
    }
}

#[test]
fn parallel_sweep_is_worker_count_invariant() {
    // The cached driver must hand back identical counters no matter how
    // the jobs were scheduled. simulate() memoizes per process, so drain
    // a fresh uncached shape per jobs value: dedupe-heavy key lists
    // through the sweep engine, values compared against the serial runs.
    let combos: Vec<(Workload, IsaKind, WidthClass)> = Workload::ALL
        .iter()
        .flat_map(|&w| {
            IsaKind::ALL
                .into_iter()
                .flat_map(move |isa| [WidthClass::W4, WidthClass::W8].map(|wd| (w, isa, wd)))
        })
        .collect();
    // Repeat keys to exercise the dedupe path.
    let mut keys = combos.clone();
    keys.extend(combos.iter().rev().cloned());

    set_jobs(1);
    let serial = sweep(&keys, |&(w, isa, wd)| simulate(w, isa, wd, SCALE));
    for jobs in [2, 5, 8] {
        set_jobs(jobs);
        let parallel = sweep(&keys, |&(w, isa, wd)| simulate(w, isa, wd, SCALE));
        assert_eq!(serial, parallel, "jobs={jobs}");
        // And bypassing the memoized cache entirely:
        let uncached = sweep(&keys, |&(w, isa, wd)| {
            run_fast(MachineConfig::preset(wd, isa), &soa_trace(w, isa, SCALE))
        });
        assert_eq!(serial, uncached, "uncached, jobs={jobs}");
    }
    set_jobs(0);
}
