//! Quickstart: write Clockhands assembly by hand, run it, and watch the
//! hands at work — then let the compiler do the same from C-like source.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use clockhands_repro::compiler;
use clockhands_repro::core::asm::{assemble, disassemble};
use clockhands_repro::core::hand::Hand;
use clockhands_repro::core::interp::Interpreter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. Hand-written Clockhands assembly (the paper's Fig. 6) ----
    // The loop bound and the stored constant live in the v hand: the loop
    // body never writes v, so their distances stay frozen — no relay
    // moves, unlike STRAIGHT.
    let prog = assemble(
        "li t, 4096       # p
         li t, 0          # i
         li v, 10         # N      (loop constant)
         li v, 42         # value  (loop constant)
         mv u, t[1]       # running pointer
         j .entry
     .loop:
         sw v[0], 0(u[0])
         addi u, u[0], 4
         addi t, t[0], 1
     .entry:
         bne t[0], v[1], .loop
         halt t[0]",
    )?;
    let mut cpu = Interpreter::new(prog)?;
    let result = cpu.run(10_000)?;
    println!(
        "hand-written loop ran {} instructions, exit = {}",
        result.committed, result.exit_value
    );
    println!(
        "memory[4096..4112] = {:?}",
        (0..4)
            .map(|i| cpu.mem().read_u64(4096 + 8 * i))
            .collect::<Vec<_>>()
    );
    // The hands after execution: v still holds the constants.
    println!(
        "v[0] = {}, v[1] = {} (constants never rotated away)",
        cpu.hands().read(Hand::V, 0)?,
        cpu.hands().read(Hand::V, 1)?
    );

    // ---- 2. The same program from Kern source, all three ISAs ----
    let set = compiler::compile(
        "global arr: int[10];
         fn main() -> int {
             for (var i: int = 0; i < 10; i += 1) { arr[i] = 42; }
             return arr[9];
         }",
    )?;
    println!(
        "\ncompiled sizes: riscv={} straight={} clockhands={}",
        set.riscv.len(),
        set.straight.len(),
        set.clockhands.len()
    );

    let mut cpu = Interpreter::new(set.clockhands.clone())?;
    println!("clockhands exit value = {}", cpu.run(1_000_000)?.exit_value);

    println!(
        "\nClockhands code the compiler produced:\n{}",
        disassemble(&set.clockhands)
    );
    Ok(())
}
