//! Explore the out-of-order pipeline: run one kernel on every Table 2
//! machine scale for all three ISAs and print IPC, misprediction rates,
//! cache behaviour, and the energy split — a miniature of Fig. 13/14.
//!
//! ```sh
//! cargo run --release --example pipeline_explorer [workload]
//! ```

use clockhands_repro::common::config::{MachineConfig, WidthClass};
use clockhands_repro::common::IsaKind;
use clockhands_repro::energy::energy;
use clockhands_repro::sim::Simulator;
use clockhands_repro::workloads::{Scale, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "xz".to_string());
    let w = Workload::ALL
        .into_iter()
        .find(|w| w.name() == name)
        .unwrap_or(Workload::Xz);
    println!("workload: {w}\n");
    println!(
        "{:<6} {:<12} {:>8} {:>8} {:>10} {:>10} {:>12} {:>10}",
        "width", "ISA", "IPC", "cycles", "mispred%", "L1D-miss", "energy(uJ)", "renamer%"
    );
    let set = w.compile(Scale::Test)?;
    for width in WidthClass::ALL {
        for isa in IsaKind::ALL {
            let cfg = MachineConfig::preset(width, isa);
            let mut sim = Simulator::new(cfg.clone());
            let c = match isa {
                IsaKind::Riscv => {
                    let mut cpu = clockhands_repro::baselines::riscv::interp::Interpreter::new(
                        set.riscv.clone(),
                    )?;
                    sim.run(&mut cpu)
                }
                IsaKind::Straight => {
                    let mut cpu = clockhands_repro::baselines::straight::interp::Interpreter::new(
                        set.straight.clone(),
                    )?;
                    sim.run(&mut cpu)
                }
                IsaKind::Clockhands => {
                    let mut cpu =
                        clockhands_repro::core::interp::Interpreter::new(set.clockhands.clone())?;
                    sim.run(&mut cpu)
                }
            };
            let e = energy(&cfg, &c);
            println!(
                "{:<6} {:<12} {:>8.3} {:>8} {:>9.2}% {:>10} {:>12.2} {:>9.1}%",
                width.label(),
                isa.to_string(),
                c.ipc(),
                c.cycles,
                100.0 * c.mispredict_rate(),
                c.dcache_misses,
                e.total() / 1e6,
                100.0 * e.component("Renamer") / e.total(),
            );
        }
        println!();
    }
    Ok(())
}
