//! Compile every benchmark kernel for the three ISAs, run all of them
//! functionally, and print the Fig. 15-style comparison: executed
//! instruction counts and the relay-move overhead that motivates
//! Clockhands.
//!
//! ```sh
//! cargo run --release --example compare_isas
//! ```

use clockhands_repro::common::op::OpClass;
use clockhands_repro::common::IsaKind;
use clockhands_repro::workloads::{Scale, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<12} {:>10} | {:>8} {:>8} | {:>8} {:>8} | paper: S≈1.08–1.56x, C≈0.98–1.17x",
        "workload", "RISC", "S total", "S moves", "C total", "C moves"
    );
    for w in Workload::ALL {
        let set = w.compile(Scale::Test)?;
        let expect = w.reference(Scale::Test);

        let mut rv = clockhands_repro::baselines::riscv::interp::Interpreter::new(set.riscv)?;
        let (rt, rres) = rv.trace(1_000_000_000)?;
        assert_eq!(rres.exit_value, expect, "riscv checksum");

        let mut st = clockhands_repro::baselines::straight::interp::Interpreter::new(set.straight)?;
        let (stt, sres) = st.trace(1_000_000_000)?;
        assert_eq!(sres.exit_value, expect, "straight checksum");

        let mut ch = clockhands_repro::core::interp::Interpreter::new(set.clockhands)?;
        let (ct, cres) = ch.trace(1_000_000_000)?;
        assert_eq!(cres.exit_value, expect, "clockhands checksum");

        let moves = |t: &[clockhands_repro::common::DynInst]| {
            t.iter().filter(|d| d.class == OpClass::Move).count()
        };
        println!(
            "{:<12} {:>10} | {:>7.3}x {:>8} | {:>7.3}x {:>8}",
            w.name(),
            rt.len(),
            stt.len() as f64 / rt.len() as f64,
            moves(&stt),
            ct.len() as f64 / rt.len() as f64,
            moves(&ct),
        );
        let _ = IsaKind::ALL;
    }
    println!("\nAll three ISAs computed identical checksums on every kernel.");
    Ok(())
}
