//! The register-lifetime studies that motivated Clockhands (Fig. 2/4/7):
//! prints the lifetime power law from a RISC trace, the inevitable
//! STRAIGHT instruction increase, and the hand-count sweep that led the
//! authors to H = 4.
//!
//! ```sh
//! cargo run --release --example lifetime_study
//! ```

use clockhands_repro::analysis::{hands_sweep, lifetime_ccdf, lifetimes_of, straight_increase};
use clockhands_repro::common::IsaKind;
use clockhands_repro::workloads::{Scale, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = Workload::Coremark;
    let set = w.compile(Scale::Small)?;
    let mut cpu = clockhands_repro::baselines::riscv::interp::Interpreter::new(set.riscv)?;
    let (trace, _) = cpu.trace(1_000_000_000)?;
    println!("RISC trace of {w}: {} instructions\n", trace.len());

    // Fig. 4: the power law.
    let d = lifetimes_of(trace.iter());
    println!("lifetime CCDF (definition frequency with lifetime >= k):");
    for (k, f) in lifetime_ccdf(&d, |_| true) {
        if k.is_power_of_two() && k.trailing_zeros() % 2 == 0 {
            println!("  k = {k:>8}: {f:.6}");
        }
    }

    // Fig. 3: what STRAIGHT inevitably pays.
    let inc = straight_increase(&trace);
    println!(
        "\ninevitable STRAIGHT increase: {:.1}% \
         (nop {:.1}%, mv-MaxDistance {:.1}%, mv-LoopConstant {:.1}%)",
        100.0 * inc.relative(),
        100.0 * inc.nop_convergence as f64 / inc.total_insts as f64,
        100.0 * inc.mv_max_distance as f64 / inc.total_insts as f64,
        100.0 * inc.mv_loop_constant as f64 / inc.total_insts as f64,
    );

    // Fig. 7: how many hands are enough.
    let sweep = hands_sweep(&trace);
    println!("\nremaining loop-constant relays vs hand count:");
    for k in 1..=8 {
        println!(
            "  {k} hands: {:>6.1}% (general)   {:>6.1}% (one hand for SP)",
            100.0 * sweep.fraction(k, false),
            100.0 * sweep.fraction(k, true)
        );
    }
    println!("\n(the paper picks H = 4: ~95% of relays eliminated; more hands barely help)");
    let _ = IsaKind::ALL;
    Ok(())
}
