#!/usr/bin/env bash
# Full-figure-suite byte-identity check for the sweep service: `figures
# --server ADDR` against a live ch-serve instance must render exactly
# what the in-process run renders. Counters travel the wire as
# exact-integer JSON (docs/PROTOCOL.md), so any divergence here means a
# protocol or cache bug — diff fails the script.
#
# Expects release builds of `figures` and `ch-serve` (the `just
# serve-bench` recipe builds them first).
set -euo pipefail
cd "$(dirname "$0")/.."

FIGURES=target/release/figures
SERVE=target/release/ch-serve
out=$(mktemp -d)
server_pid=
trap 'if [ -n "$server_pid" ]; then kill "$server_pid" 2>/dev/null || true; fi; rm -rf "$out"' EXIT

"$SERVE" serve --addr 127.0.0.1:0 > "$out/serve.log" 2> "$out/serve.err" &
server_pid=$!
addr=
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$out/serve.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "ch-serve did not report a listening address" >&2
    cat "$out/serve.err" >&2
    exit 1
fi

"$FIGURES" --scale test --jobs 2 > "$out/local.txt" 2> /dev/null
"$FIGURES" --scale test --jobs 2 --server "$addr" > "$out/served.txt" 2> /dev/null
diff -u "$out/local.txt" "$out/served.txt"
echo "figures --server $addr: full suite byte-identical to the in-process run"
