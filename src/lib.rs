#![warn(missing_docs)]

//! # clockhands-repro — reproduction of "Clockhands: Rename-free
//! Instruction Set Architecture for Out-of-order Processors" (MICRO 2023)
//!
//! This facade re-exports the workspace crates:
//!
//! * [`core`] (`clockhands`) — the Clockhands ISA itself: hands,
//!   instructions, assembler, register-pointer allocation, interpreter.
//! * [`baselines`] — the RISC-V-like and STRAIGHT comparison ISAs.
//! * [`compiler`] — the Kern language with one backend per ISA.
//! * [`workloads`] — CoreMark/bzip2/mcf/lbm/xz analogue kernels.
//! * [`sim`] — the cycle-level out-of-order simulator (Table 2 machines).
//! * [`energy`] — the McPAT-style energy model (Fig. 14).
//! * [`fpga`] — the Table 3 FPGA resource model.
//! * [`analysis`] — the trace studies (Fig. 3, 4, 7, 15, 16, 17, 18).
//! * [`common`] — shared machine model types.
//!
//! See README.md for a tour and `cargo run -p ch-bench --bin figures`
//! for the full experiment suite.
//!
//! ## Quick start
//!
//! ```
//! use clockhands_repro::core::asm::assemble;
//! use clockhands_repro::core::interp::Interpreter;
//!
//! let prog = assemble(
//!     "li v, 10         # loop bound lives in the v hand
//!      li t, 0
//!  .l: addi t, t[0], 1
//!      bne  t[0], v[0], .l
//!      halt t[0]",
//! )?;
//! assert_eq!(Interpreter::new(prog)?.run(1_000)?.exit_value, 10);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use ch_analysis as analysis;
pub use ch_baselines as baselines;
pub use ch_common as common;
pub use ch_compiler as compiler;
pub use ch_energy as energy;
pub use ch_fpga as fpga;
pub use ch_sim as sim;
pub use ch_workloads as workloads;
pub use clockhands as core;
