# isa: straight
# expect: E-HOLE
# Stores occupy a ring slot but produce no value; reading that slot is
# meaningless.
li 8
li 64
sd [2], 0([1])
halt [1]
