# isa: clockhands
# expect-assemble-error: distance
# t[16] exceeds the 4-bit distance field; the assembler rejects the
# operand before the verifier ever sees the program.
li t, 1
mv t, t[16]
halt t[0]
