# isa: clockhands
# expect: E-PATH
# One arm pushes one s write, the other two: at the join s[2] names the
# argument on one path and the return address on the other.
_start:
li t, 5
mv s, t[0]
call s, f
halt s[1]
f:
bne s[1], zero, .two
mv s, s[1]
j .join
.two:
mv s, s[1]
mv s, s[2]
.join:
mv t, s[2]
halt t[0]
