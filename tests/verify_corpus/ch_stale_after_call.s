# isa: clockhands
# expect: E-CLOBBER
# A t value computed before a call is caller-clobbered after it; the
# backend must relay such values through the s hand.
_start:
call s, f
halt s[1]
f:
li t, 1
mv s, s[0]
call s, g
mv s, t[0]
mv s, s[1]
jr s[1]
g:
mv s, s[1]
mv s, s[2]
jr s[2]
