# isa: straight
# expect: E-CLOBBER
# A pre-call value referenced with a distance that ignores the call's
# ring effect resolves to caller-clobbered state.
_start:
call f
halt [2]
f:
li 42
call g
mv [3]
ret [4]
g:
li 9
ret [2]
