# isa: clockhands
# expect: E-CSREAD
# v holds the caller's callee-saved values at entry; a called function
# may read them only to save them, not feed them into arithmetic.
_start:
call s, f
halt s[1]
f:
add t, v[0], zero
mv s, t[0]
mv s, s[3]
jr s[2]
