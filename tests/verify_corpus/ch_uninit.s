# isa: clockhands
# expect: E-UNINIT
# Reading u-hand slots that no instruction ever wrote: at machine entry
# every hand window is uninitialized.
add t, u[0], u[1]
halt t[0]
