# isa: clockhands
# expect: E-RAKIND
# s[0] holds the return address at function entry; using it as an
# arithmetic operand is a convention violation.
_start:
call s, f
halt s[1]
f:
add t, s[0], zero
mv s, t[0]
mv s, s[3]
jr s[2]
