# isa: straight
# expect: E-UNINIT
# At machine entry nothing has been written; [5] reaches past program
# start.
mv [5]
halt [1]
