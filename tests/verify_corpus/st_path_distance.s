# isa: straight
# expect: E-PATH
# The taken arm pushes two values, the fallthrough arm one: at the
# join `[2]` names a different entry-anchored value per path — the
# static-reach violation STRAIGHT compilers must pad away.
_start:
call f
halt [2]
f:
bne [2], zero, .long
mv [2]
j .done
.long:
mv [3]
mv [3]
.done:
mv [2]
halt [1]
