# isa: riscv
# expect: E-UNINIT
# t0 is read before any instruction defines it.
_start:
add t1, t0, t0
halt t1
