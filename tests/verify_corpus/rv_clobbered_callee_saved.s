# isa: riscv
# expect: E-CALLEE
# s0 is callee-saved; overwriting it without save/restore violates the
# ABI the backends rely on.
_start:
call ra, f
halt a0
f:
li s0, 5
add a0, s0, zero
ret ra
