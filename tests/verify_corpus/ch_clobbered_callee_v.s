# isa: clockhands
# expect: E-CALLEE
# A called function overwrites callee-saved v[0] and returns without
# restoring the caller's value.
_start:
call s, f
halt s[1]
f:
li v, 7
mv s, v[0]
mv s, s[2]
jr s[2]
