# isa: clockhands
# expect: E-SP
# At return, s[0] must again hold the caller stack pointer; here the
# function returns with a local value in that slot.
_start:
call s, f
halt s[1]
f:
li t, 9
mv s, t[0]
jr s[1]
