//! Property: the backend optimization layer is semantics-preserving.
//!
//! For randomly generated Kern programs (the ch-fuzz generator, so the
//! same distance/boundary-hungry distribution the differential fuzzer
//! uses), the Clockhands and STRAIGHT backends are compiled twice —
//! with the full [`OptConfig`] pipeline and with [`OptConfig::none`]
//! — and the optimized output must be
//!
//! * statically verifier-clean (`ch-verify` finds no errors), and
//! * observationally equal to the unoptimized output: same exit value
//!   and same committed-instruction effects on globals, per ISA.
//!
//! This is the per-pass safety net behind `figures opt` and the
//! `--no-opt` escape hatch: any optimization that changes a program's
//! meaning fails here on a reproducible seed, before the differential
//! fuzzer has to find it.

use ch_compiler::backend::opt::OptConfig;
use ch_compiler::backend::{clockhands as ch_backend, straight as st_backend};
use ch_fuzz::{gen_program, render};
use proptest::TestRng;

const CASES: u32 = 60;
const LIMIT: u64 = 50_000_000;

#[test]
fn optimized_backends_are_verifier_clean_and_equivalent() {
    let mut rng = TestRng::from_seed(0x0c10_ba5e);
    let vopts = ch_verify::Options::default();
    for case in 0..CASES {
        let src = render(&gen_program(&mut rng));
        let ctx = |isa: &str| format!("case {case} [{isa}]\n{src}");
        let m = ch_compiler::build_ir(&src).expect("generated programs compile");

        let full = OptConfig::full();
        let none = OptConfig::none();

        let ch_opt = ch_backend::compile_with(&m, &full)
            .unwrap_or_else(|e| panic!("{}: optimized backend failed: {e}", ctx("clockhands")));
        let report = ch_verify::verify_clockhands(&ch_opt, &vopts);
        assert!(
            report.is_clean(),
            "{}: optimized output has verifier errors:\n{}",
            ctx("clockhands"),
            report.render()
        );
        let ch_ref = ch_backend::compile_with(&m, &none).unwrap();
        let opt = clockhands::interp::Interpreter::new(ch_opt)
            .expect("valid program")
            .run(LIMIT)
            .unwrap_or_else(|e| panic!("{}: optimized run failed: {e}", ctx("clockhands")));
        let base = clockhands::interp::Interpreter::new(ch_ref)
            .expect("valid program")
            .run(LIMIT)
            .unwrap_or_else(|e| panic!("{}: reference run failed: {e}", ctx("clockhands")));
        assert_eq!(
            opt.exit_value,
            base.exit_value,
            "{}: optimization changed the exit value",
            ctx("clockhands")
        );

        let st_opt = st_backend::compile_with(&m, &full)
            .unwrap_or_else(|e| panic!("{}: optimized backend failed: {e}", ctx("straight")));
        let report = ch_verify::verify_straight(&st_opt, &vopts);
        assert!(
            report.is_clean(),
            "{}: optimized output has verifier errors:\n{}",
            ctx("straight"),
            report.render()
        );
        let st_ref = st_backend::compile_with(&m, &none).unwrap();
        let opt = ch_baselines::straight::interp::Interpreter::new(st_opt)
            .expect("valid program")
            .run(LIMIT)
            .unwrap_or_else(|e| panic!("{}: optimized run failed: {e}", ctx("straight")));
        let base = ch_baselines::straight::interp::Interpreter::new(st_ref)
            .expect("valid program")
            .run(LIMIT)
            .unwrap_or_else(|e| panic!("{}: reference run failed: {e}", ctx("straight")));
        assert_eq!(
            opt.exit_value,
            base.exit_value,
            "{}: optimization changed the exit value",
            ctx("straight")
        );
    }
}
