//! Property-based tests on the core ISA data structures: the hand file,
//! the register-pointer ring allocation, and the binary encoding.

use ch_common::exec::{AluOp, BrCond, LoadOp, StoreOp};
use clockhands::encode::{decode, encode};
use clockhands::hand::Hand;
use clockhands::inst::{Inst, Src};
use clockhands::rp::RingFile;
use clockhands::state::HandFile;
use proptest::prelude::*;

fn arb_hand() -> impl Strategy<Value = Hand> {
    prop_oneof![Just(Hand::T), Just(Hand::U), Just(Hand::V), Just(Hand::S)]
}

fn arb_src() -> impl Strategy<Value = Src> {
    prop_oneof![
        (arb_hand(), 0u8..15).prop_map(|(h, d)| Src::Hand(h, d)),
        Just(Src::Zero),
    ]
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    let alu_op = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Xor),
        Just(AluOp::Fadd),
        Just(AluOp::Fdiv),
    ];
    prop_oneof![
        (alu_op, arb_hand(), arb_src(), arb_src()).prop_map(|(op, dst, src1, src2)| Inst::Alu {
            op,
            dst,
            src1,
            src2
        }),
        (arb_hand(), arb_src(), -8000i32..8000).prop_map(|(dst, src1, imm)| Inst::AluImm {
            op: AluOp::Add,
            dst,
            src1,
            imm
        }),
        (arb_hand(), -4_000_000i64..4_000_000).prop_map(|(dst, imm)| Inst::Li { dst, imm }),
        (arb_hand(), arb_src(), -8000i32..8000).prop_map(|(dst, base, offset)| Inst::Load {
            op: LoadOp::Ld,
            dst,
            base,
            offset
        }),
        (arb_src(), arb_src(), -500i32..500).prop_map(|(value, base, offset)| Inst::Store {
            op: StoreOp::Sd,
            value,
            base,
            offset
        }),
        (arb_src(), arb_src(), 0u32..400).prop_map(|(src1, src2, target)| Inst::Branch {
            cond: BrCond::Ne,
            src1,
            src2,
            target
        }),
        (0u32..400).prop_map(|target| Inst::Jump { target }),
        (arb_hand(), 0u32..400).prop_map(|(dst, target)| Inst::Call { dst, target }),
        (arb_src()).prop_map(|src| Inst::JumpReg { src }),
        (arb_hand(), arb_src()).prop_map(|(dst, src)| Inst::Mv { dst, src }),
        Just(Inst::Nop),
        (arb_src()).prop_map(|src| Inst::Halt { src }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(inst in arb_inst(), at in 200u32..300) {
        // Branch displacements of ±100 instructions around `at` fit every
        // format; all other fields are drawn from encodable ranges.
        prop_assume!(match inst {
            Inst::Branch { target, .. } => (at as i64 - target as i64).abs() < 100,
            _ => true,
        });
        if let Ok(word) = encode(&inst, at) {
            let back = decode(word, at).expect("decodes");
            prop_assert_eq!(inst, back);
        }
    }

    #[test]
    fn hand_file_behaves_like_a_shift_register(
        writes in proptest::collection::vec((arb_hand(), any::<u64>()), 1..200)
    ) {
        // Model: per-hand Vec of all values; hand[d] = len-1-d.
        let mut file = HandFile::new();
        let mut model: [Vec<u64>; 4] = Default::default();
        for (i, (h, v)) in writes.iter().enumerate() {
            file.write(*h, *v, i as u64);
            model[h.index()].push(*v);
        }
        for h in Hand::ALL {
            let m = &model[h.index()];
            for d in 0..15u8 {
                if (d as usize) < m.len() {
                    prop_assert_eq!(file.read(h, d).unwrap(), m[m.len() - 1 - d as usize]);
                }
            }
        }
    }

    #[test]
    fn ring_file_group_alloc_equals_sequential(
        group in proptest::collection::vec(
            (proptest::option::of(0usize..4),
             proptest::collection::vec((0usize..4, 0u32..4), 0..2)),
            1..16
        ),
        warmup in 8u64..64
    ) {
        let quotas = [64u32, 48, 32, 24];
        let mut a = RingFile::new(&quotas, 16);
        let mut b = RingFile::new(&quotas, 16);
        // Warm up so every source distance is resolvable.
        for i in 0..warmup {
            for g in 0..4 {
                let _ = a.alloc(g);
                let _ = b.alloc(g);
            }
            let _ = i;
        }
        let got = a.alloc_group(&group);
        let mut want = Vec::new();
        for (dst, srcs) in &group {
            let srcs_phys: Vec<u32> = srcs.iter().map(|&(g, d)| b.src_phys(g, d)).collect();
            let dst_phys = dst.map(|g| b.alloc(g));
            want.push((dst_phys, srcs_phys));
        }
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.dst, w.0);
            prop_assert_eq!(&g.srcs, &w.1);
        }
    }

    #[test]
    fn ring_file_restore_is_total(ops in proptest::collection::vec(0usize..4, 1..100)) {
        let mut rp = RingFile::new(&[64, 48, 32, 24], 16);
        for &g in ops.iter().take(20) {
            rp.alloc(g);
        }
        let snap = rp.snapshot();
        let before: Vec<u64> = (0..4).map(|g| rp.writes(g)).collect();
        for &g in &ops {
            rp.alloc(g);
        }
        rp.restore(&snap);
        for (g, &w) in before.iter().enumerate() {
            prop_assert_eq!(rp.writes(g), w);
        }
    }
}
