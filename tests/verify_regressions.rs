//! The static verifier against the fuzzer's regression corpus.
//!
//! Two directions:
//!
//! * every minimized reproducer in `tests/regressions/` exposed a real
//!   backend bug that has since been fixed — the *fixed* compiler's
//!   output for each must now be verifier-clean on all three ISAs;
//! * hand-written assembly variants that re-introduce two of the
//!   fuzzer-found backend bug patterns (a Clockhands value kept live
//!   across a call without an `s`-hand relay, and a STRAIGHT operand
//!   whose distance was not adjusted for a call's ring effect) must be
//!   *rejected* with the expected diagnostic — the verifier is the
//!   static backstop that would have caught those bugs without
//!   executing anything.

use ch_verify::{verify_clockhands, verify_riscv, verify_straight, Options};

#[test]
fn fixed_reproducers_compile_to_verifier_clean_output() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/regressions");
    let mut cases: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/regressions exists")
        .filter_map(|e| {
            let p = e.expect("readable dir entry").path();
            (p.extension().and_then(|x| x.to_str()) == Some("kern")).then_some(p)
        })
        .collect();
    assert!(!cases.is_empty(), "no reproducers in {dir}");
    cases.sort();
    let opts = Options::default();
    for path in cases {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).expect("readable reproducer");
        let set = ch_compiler::compile(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        for report in [
            verify_clockhands(&set.clockhands, &opts),
            verify_straight(&set.straight, &opts),
            verify_riscv(&set.riscv, &opts),
        ] {
            assert!(
                report.is_clean(),
                "{name} [{}] no longer verifier-clean:\n{}",
                report.isa,
                report.render()
            );
        }
    }
}

/// Reverted form of the `clockhands_stale_dead_value_relay` bug: the
/// backend once kept a `t`-hand value live across a call instead of
/// relaying it through the `s` hand. Post-call, `t` holds caller
/// leftovers, so the read must be flagged as E-CLOBBER.
#[test]
fn reverted_clockhands_missing_relay_across_call_is_flagged() {
    let src = "_start:
         call s, f
         halt s[1]
         f:
         li t, 1
         mv s, s[0]
         call s, g
         mv s, t[0]        # bug: t[0] died at the call
         mv s, s[1]
         jr s[1]
         g:
         mv s, s[1]
         mv s, s[2]
         jr s[2]";
    let prog = clockhands::asm::assemble(src).expect("assembles");
    let r = verify_clockhands(&prog, &Options::default());
    assert!(!r.is_clean());
    assert!(
        r.errors().any(|d| d.code == "E-CLOBBER"),
        "expected E-CLOBBER:\n{}",
        r.render()
    );
}

/// Reverted form of the `straight_call_spill_slot_drift` bug: the
/// backend once referenced a pre-call value with a distance that was
/// not recomputed after a call was inserted between def and use. The
/// operand now resolves to caller-clobbered ring state: E-CLOBBER.
#[test]
fn reverted_straight_call_distance_drift_is_flagged() {
    let src = "_start:
         call f
         halt [2]
         f:
         li 42             # meant to survive the call
         call g
         mv [3]            # bug: distance not adjusted for the call
         ret [4]
         g:
         li 9
         ret [2]";
    let prog = ch_baselines::straight::asm::assemble(src).expect("assembles");
    let r = verify_straight(&prog, &Options::default());
    assert!(!r.is_clean());
    assert!(
        r.errors().any(|d| d.code == "E-CLOBBER"),
        "expected E-CLOBBER:\n{}",
        r.render()
    );
}

/// The E-PATH gate after the `fuzz_seed777_case2336` fix: merging two
/// *plain* entry tokens (a phi of two relayed arguments) is legal, but
/// a join where the same slot is an argument on one path and the
/// return address on the other is still a misplaced distance and must
/// be flagged. One branch arm pushes one `s` write, the other two, so
/// `s[2]` resolves to the RA or the argument depending on the path.
#[test]
fn entry_mix_involving_return_address_is_still_flagged() {
    let src = "_start:
         li t, 5
         mv s, t[0]
         call s, f
         halt s[1]
         f:
         bne s[1], zero, .two
         mv s, s[1]
         j .join
         .two:
         mv s, s[1]
         mv s, s[2]
         .join:
         mv t, s[2]
         halt t[0]";
    let prog = clockhands::asm::assemble(src).expect("assembles");
    let r = verify_clockhands(&prog, &Options::default());
    assert!(!r.is_clean());
    assert!(
        r.errors().any(|d| d.code == "E-PATH"),
        "expected E-PATH:\n{}",
        r.render()
    );
}
