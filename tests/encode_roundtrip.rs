//! Encoder/decoder round-trip properties over the fuzz corpus.
//!
//! The binary formats in `ch-encode` are only trustworthy if
//! `decode(encode(p)) == p` holds for every program the compiler can
//! emit — not just the five golden workloads. This suite drives the
//! `ch-fuzz` Kern generator through the compiler and both encoding
//! variants of all three ISAs, and additionally checks that the
//! decoders fail *structurally* (never panic) on truncated and garbage
//! byte streams.

use ch_common::EncodingVariant;
use ch_compiler::{compile, encode_set};
use ch_encode::{decode_clockhands, decode_riscv, decode_straight, DecodeError};
use ch_workloads::{Scale, Workload};
use proptest::TestRng;

/// One fixed seed reproduces the whole corpus; mirrored after the
/// differential suites so a round-trip failure here can be cross-read
/// against a differential run of the same batch.
const SEED: u64 = 0x0939_c0de;

/// Corpus size. The acceptance bar is ≥500 distinct generated programs
/// per ISA×variant pair.
const CASES: u32 = 500;

/// Round-trips every program of a compiled set under `variant` and
/// asserts bit-for-bit instruction recovery.
fn roundtrip_set(set: &ch_compiler::CompiledSet, variant: EncodingVariant, ctx: &str) {
    let enc =
        encode_set(set, variant).unwrap_or_else(|e| panic!("{ctx}: {variant} encode failed: {e}"));
    let r = decode_riscv(&enc.riscv.bytes, &enc.riscv.pool)
        .unwrap_or_else(|e| panic!("{ctx}: {variant} riscv decode failed: {e}"));
    assert_eq!(r, set.riscv.insts, "{ctx}: {variant} riscv round-trip");
    let s = decode_straight(&enc.straight.bytes, &enc.straight.pool)
        .unwrap_or_else(|e| panic!("{ctx}: {variant} straight decode failed: {e}"));
    assert_eq!(
        s, set.straight.insts,
        "{ctx}: {variant} straight round-trip"
    );
    let c = decode_clockhands(&enc.clockhands.bytes, &enc.clockhands.pool)
        .unwrap_or_else(|e| panic!("{ctx}: {variant} clockhands decode failed: {e}"));
    assert_eq!(
        c, set.clockhands.insts,
        "{ctx}: {variant} clockhands round-trip"
    );
}

#[test]
fn fuzz_corpus_round_trips_all_isa_variant_pairs() {
    // Static verification re-checks every compiled program; the corpus
    // only exercises the encoders, so skip it for throughput (the
    // differential suites keep it on).
    ch_workloads::set_verify(false);
    let mut rng = TestRng::from_seed(SEED);
    for i in 0..CASES {
        let program = ch_fuzz::gen_program(&mut rng);
        let src = ch_fuzz::render(&program);
        let ctx = format!("fuzz case {i}");
        let set = compile(&src).unwrap_or_else(|e| panic!("{ctx}: compile failed: {e}"));
        for variant in EncodingVariant::ALL {
            roundtrip_set(&set, variant, &ctx);
        }
    }
}

#[test]
fn golden_workloads_round_trip() {
    for w in Workload::ALL {
        let set = w.compile(Scale::Test).expect("golden workload compiles");
        for variant in EncodingVariant::ALL {
            roundtrip_set(&set, variant, w.name());
        }
    }
}

/// Runs `body` once per ISA decoder, with `$decode` bound to the
/// decoder fn and `$name` to its label. A macro because the three
/// decoders return different instruction types.
macro_rules! for_each_decoder {
    (|$name:ident, $decode:ident| $body:block) => {{
        {
            let $name = "riscv";
            let $decode = decode_riscv;
            $body
        }
        {
            let $name = "straight";
            let $decode = decode_straight;
            $body
        }
        {
            let $name = "clockhands";
            let $decode = decode_clockhands;
            $body
        }
    }};
}

#[test]
fn truncated_streams_decode_to_structured_errors() {
    let set = compile(
        "fn main() -> int {
             var a: int = 7;
             for (var i: int = 0; i < 5; i += 1) { a = a * 3 + i; }
             return a & 0xffff;
         }",
    )
    .expect("compiles");
    for variant in EncodingVariant::ALL {
        let enc = encode_set(&set, variant).expect("encodes");
        let programs = [
            ("riscv", &enc.riscv),
            ("straight", &enc.straight),
            ("clockhands", &enc.clockhands),
        ];
        for_each_decoder!(|name, decode| {
            let prog = programs
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, p)| *p)
                .unwrap();
            // Every proper prefix must decode to a structured outcome,
            // never a panic: Ok when the cut lands on an instruction
            // boundary and no branch escapes it, a Truncated/BadTarget
            // error otherwise.
            for cut in 0..prog.bytes.len() {
                if let Err(e) = decode(&prog.bytes[..cut], &prog.pool) {
                    assert!(
                        matches!(
                            e,
                            DecodeError::Truncated { .. } | DecodeError::BadTarget { .. }
                        ),
                        "{name}/{variant}: cut at {cut} gave unexpected error {e}"
                    );
                }
            }
            // A cut one byte short splits the final unit and must
            // report exactly where.
            let cut = prog.bytes.len() - 1;
            match decode(&prog.bytes[..cut], &prog.pool) {
                Err(DecodeError::Truncated { at }) => {
                    assert!(at < cut, "{name}/{variant}: truncation offset past the cut")
                }
                Err(DecodeError::BadTarget { .. }) => {
                    // Acceptable: the severed tail held a branch target.
                }
                other => panic!("{name}/{variant}: mid-unit cut decoded as {other:?}"),
            }
        });
    }
}

#[test]
fn garbage_streams_never_panic() {
    let pool: Vec<u64> = vec![0xdead_beef];
    let mut rng = TestRng::from_seed(SEED ^ 0xffff);
    let rounds: Vec<Vec<u8>> = (0..200)
        .map(|_| {
            let len = 2 + (rng.next_u64() as usize % 62);
            (0..len).map(|_| rng.next_u64() as u8).collect()
        })
        .collect();
    for_each_decoder!(|name, decode| {
        for (round, bytes) in rounds.iter().enumerate() {
            // Any outcome is fine except a panic; an Ok must at least
            // be internally consistent (no unit is shorter than 2
            // bytes, so at most len/2 instructions).
            if let Ok(insts) = decode(bytes, &pool) {
                assert!(
                    insts.len() <= bytes.len() / 2,
                    "{name}: round {round} decoded more instructions than bytes allow"
                );
            }
        }
        // Degenerate streams: empty, all-zero, all-ones, missing pool.
        assert!(
            decode(&[], &pool).unwrap().is_empty(),
            "{name}: empty stream"
        );
        let _ = decode(&[0u8; 32], &pool);
        let _ = decode(&[0xffu8; 32], &pool);
        let _ = decode(&[0u8; 32], &[]);
        assert!(
            decode(&[0x13], &pool).is_err(),
            "{name}: lone byte must not decode"
        );
    });
}
