//! Differential testing: randomly generated Kern programs must compute
//! identical results on all three ISAs (the compiler's three register
//! assignment strategies may not change semantics).

use ch_baselines::{riscv, straight};
use ch_compiler::compile;
use clockhands::interp::Interpreter as ChInterp;
use proptest::prelude::*;

/// A tiny generator of well-formed Kern programs over four int variables.
fn arb_program() -> impl Strategy<Value = String> {
    let var = prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")];
    let atom = prop_oneof![
        (0i64..100).prop_map(|v| v.to_string()),
        var.clone().prop_map(|v| v.to_string()),
    ];
    let expr = (
        atom.clone(),
        prop_oneof![Just("+"), Just("-"), Just("*"), Just("&")],
        atom,
    )
        .prop_map(|(a, op, b)| format!("({a} {op} {b})"));
    let assign = (var.clone(), expr.clone()).prop_map(|(v, e)| format!("{v} = {e};"));
    let ifstmt = (var.clone(), expr.clone(), assign.clone(), assign.clone())
        .prop_map(|(v, e, t, f)| format!("if ({v} < {e}) {{ {t} }} else {{ {f} }}"));
    let loopstmt = (1i64..8, var.clone(), expr.clone()).prop_map(|(n, v, e)| {
        format!("for (var i{v}: int = 0; i{v} < {n}; i{v} += 1) {{ {v} = {v} + {e}; }}")
    });
    let stmt = prop_oneof![3 => assign, 1 => ifstmt, 2 => loopstmt];
    proptest::collection::vec(stmt, 1..12).prop_map(|stmts| {
        format!(
            "fn main() -> int {{
                 var a: int = 1; var b: int = 2; var c: int = 3; var d: int = 4;
                 {}
                 return (a + b * 3 + c * 5 + d * 7) & 0xffffff;
             }}",
            stmts.join("\n")
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn three_backends_agree(src in arb_program()) {
        let set = compile(&src).expect("generated programs compile");
        let r = riscv::interp::Interpreter::new(set.riscv)
            .unwrap()
            .run(50_000_000)
            .expect("riscv runs");
        let s = straight::interp::Interpreter::new(set.straight)
            .unwrap()
            .run(50_000_000)
            .expect("straight runs");
        let c = ChInterp::new(set.clockhands)
            .unwrap()
            .run(50_000_000)
            .expect("clockhands runs");
        prop_assert_eq!(r.exit_value, s.exit_value, "RISC vs STRAIGHT");
        prop_assert_eq!(r.exit_value, c.exit_value, "RISC vs Clockhands");
    }
}

#[test]
fn nested_calls_and_loops_agree() {
    // A directed stress case: recursion + loops + globals + bytes + FP.
    let src = "global acc: int;
        global buf: byte[64];
        fn helper(x: int, depth: int) -> int {
            if (depth == 0) { return x; }
            var s: int = 0;
            for (var i: int = 0; i < 3; i += 1) {
                s += helper(x + i, depth - 1);
            }
            return s & 0xfffff;
        }
        fn main() -> int {
            for (var i: int = 0; i < 64; i += 1) { buf[i] = i * 7; }
            var f: real = 0.5;
            for (var i: int = 0; i < 10; i += 1) { f = f * 1.5 - 0.25; }
            acc = helper(5, 4) + int(f) + buf[63];
            return acc & 0xffffff;
        }";
    let set = compile(src).expect("compiles");
    let r = riscv::interp::Interpreter::new(set.riscv)
        .unwrap()
        .run(80_000_000)
        .unwrap();
    let s = straight::interp::Interpreter::new(set.straight)
        .unwrap()
        .run(80_000_000)
        .unwrap();
    let c = ChInterp::new(set.clockhands)
        .unwrap()
        .run(80_000_000)
        .unwrap();
    assert_eq!(r.exit_value, s.exit_value);
    assert_eq!(r.exit_value, c.exit_value);
}
