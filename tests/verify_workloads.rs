//! The static verifier must accept the compiler's output: every
//! workload, on every backend, at every scale the tier-1 suite builds,
//! verifies with zero errors (lint warnings are allowed). Any error
//! here is a verifier false positive or a real backend bug — both are
//! release blockers.

use ch_verify::{verify_clockhands, verify_riscv, verify_straight, Options, Report};
use ch_workloads::{Scale, Workload};

fn assert_clean(report: &Report, what: &str) {
    assert!(
        report.is_clean(),
        "{what} ({}) has verifier errors:\n{}",
        report.isa,
        report.render()
    );
}

#[test]
fn all_workloads_verify_on_all_backends() {
    let opts = Options::default();
    for w in Workload::ALL {
        let set = w
            .compile(Scale::Test)
            .unwrap_or_else(|e| panic!("{} failed to compile: {e}", w.name()));
        let what = format!("{}/test", w.name());
        assert_clean(&verify_clockhands(&set.clockhands, &opts), &what);
        assert_clean(&verify_straight(&set.straight, &opts), &what);
        assert_clean(&verify_riscv(&set.riscv, &opts), &what);
    }
}

#[test]
fn small_scale_coremark_also_verifies() {
    // One larger program as a stress check on the worklist engine.
    let set = Workload::Coremark
        .compile(Scale::Small)
        .expect("coremark/small compiles");
    let opts = Options::default();
    assert_clean(&verify_clockhands(&set.clockhands, &opts), "coremark/small");
    assert_clean(&verify_straight(&set.straight, &opts), "coremark/small");
    assert_clean(&verify_riscv(&set.riscv, &opts), "coremark/small");
}
