//! End-to-end integration: every workload kernel, compiled by the Kern
//! compiler, runs through the functional interpreters and the timing
//! simulator on Table 2 machines, and the headline orderings of the
//! paper's evaluation hold.

use ch_common::config::{MachineConfig, WidthClass};
use ch_common::IsaKind;
use ch_energy::energy;
use ch_sim::Simulator;
use ch_workloads::{Scale, Workload};

fn sim_one(w: Workload, isa: IsaKind, width: WidthClass) -> ch_common::Counters {
    let set = w.compile(Scale::Test).expect("compiles");
    let cfg = MachineConfig::preset(width, isa);
    let mut sim = Simulator::new(cfg);
    match isa {
        IsaKind::Riscv => {
            let mut cpu = ch_baselines::riscv::interp::Interpreter::new(set.riscv).expect("valid");
            let c = sim.run(&mut cpu);
            assert!(cpu.error().is_none());
            assert_eq!(cpu.exit_value(), Some(w.reference(Scale::Test)));
            c
        }
        IsaKind::Straight => {
            let mut cpu =
                ch_baselines::straight::interp::Interpreter::new(set.straight).expect("valid");
            let c = sim.run(&mut cpu);
            assert!(cpu.error().is_none());
            assert_eq!(cpu.exit_value(), Some(w.reference(Scale::Test)));
            c
        }
        IsaKind::Clockhands => {
            let mut cpu = clockhands::interp::Interpreter::new(set.clockhands).expect("valid");
            let c = sim.run(&mut cpu);
            assert!(cpu.error().is_none());
            assert_eq!(cpu.exit_value(), Some(w.reference(Scale::Test)));
            c
        }
    }
}

#[test]
fn counters_are_internally_consistent() {
    for w in [Workload::Coremark, Workload::Xz] {
        for isa in IsaKind::ALL {
            let c = sim_one(w, isa, WidthClass::W8);
            assert!(c.cycles > 0);
            assert_eq!(c.committed, c.decoded);
            assert_eq!(c.committed, c.issued);
            assert!(c.fetched >= c.committed, "{w}/{isa}");
            assert!(c.ipc() > 0.1 && c.ipc() < 8.0, "{w}/{isa} IPC {}", c.ipc());
            assert!(c.branch_mispredicts <= c.branch_preds);
            assert!(c.dcache_misses <= c.dcache_accesses);
            // Top-down accounting closes exactly: every commit slot is a
            // committed instruction or an attributed stall.
            let commit_width = MachineConfig::preset(WidthClass::W8, isa).commit_width;
            assert!(
                c.slots_conserved(commit_width),
                "{w}/{isa}: {} + {} != {} x {}",
                c.committed,
                c.stalls.attributed(),
                commit_width,
                c.cycles
            );
            // ISA-specific event classes are mutually exclusive.
            if isa == IsaKind::Riscv {
                assert!(c.rmt_reads > 0 && c.rp_updates == 0);
            } else {
                assert!(c.rp_updates > 0 && c.rmt_reads == 0);
            }
        }
    }
}

#[test]
fn clockhands_beats_straight_on_every_kernel() {
    // Fig. 13: Clockhands shows equal-or-better performance than
    // STRAIGHT on all benchmarks.
    for w in Workload::ALL {
        let s = sim_one(w, IsaKind::Straight, WidthClass::W8).cycles;
        let c = sim_one(w, IsaKind::Clockhands, WidthClass::W8).cycles;
        assert!(
            c <= s + s / 50,
            "{w}: Clockhands {c} cycles vs STRAIGHT {s}"
        );
    }
}

#[test]
fn clockhands_is_near_risc_performance() {
    // Fig. 13: Clockhands performance is comparable to RISC (the paper
    // reports 97.3–101.6%; we allow a wider band for the first-step
    // compiler's instruction overhead).
    let mut total_r = 0.0;
    let mut total_c = 0.0;
    for w in Workload::ALL {
        total_r += sim_one(w, IsaKind::Riscv, WidthClass::W8).cycles as f64;
        total_c += sim_one(w, IsaKind::Clockhands, WidthClass::W8).cycles as f64;
    }
    let ratio = total_r / total_c;
    assert!(
        ratio > 0.80 && ratio < 1.25,
        "aggregate Clockhands performance {:.1}% of RISC",
        100.0 * ratio
    );
}

#[test]
fn energy_gap_grows_with_width() {
    // Fig. 14: the Clockhands-vs-RISC energy difference moves in
    // Clockhands' favour as the front end widens.
    let gap_at = |width: WidthClass| {
        let mut r = 0.0;
        let mut c = 0.0;
        for w in [Workload::Mcf, Workload::Xz] {
            let cr = sim_one(w, IsaKind::Riscv, width);
            let cc = sim_one(w, IsaKind::Clockhands, width);
            r += energy(&MachineConfig::preset(width, IsaKind::Riscv), &cr).total();
            c += energy(&MachineConfig::preset(width, IsaKind::Clockhands), &cc).total();
        }
        1.0 - c / r
    };
    let g4 = gap_at(WidthClass::W4);
    let g16 = gap_at(WidthClass::W16);
    assert!(
        g16 > g4 + 0.05,
        "savings must grow with width: 4f {:.1}% vs 16f {:.1}%",
        100.0 * g4,
        100.0 * g16
    );
}

#[test]
fn straight_executes_most_instructions() {
    // Fig. 15 ordering: STRAIGHT > Clockhands > RISC on executed counts.
    for w in Workload::ALL {
        let r = sim_one(w, IsaKind::Riscv, WidthClass::W4).committed;
        let s = sim_one(w, IsaKind::Straight, WidthClass::W4).committed;
        let c = sim_one(w, IsaKind::Clockhands, WidthClass::W4).committed;
        assert!(s > c, "{w}: STRAIGHT {s} vs Clockhands {c}");
        assert!(c > r, "{w}: Clockhands {c} vs RISC {r}");
    }
}
