//! Golden-diagnostic corpus for the static verifier.
//!
//! Every file in `tests/verify_corpus/` is a deliberately invalid
//! program with a header describing what must go wrong:
//!
//! ```text
//! # isa: <clockhands|straight|riscv>
//! # expect: E-XXXX                      (verifier must emit this error)
//! # expect-assemble-error: <substring>  (assembler must reject first)
//! ```
//!
//! The runner assembles each file with the matching assembler and
//! asserts either that assembly fails with the expected message, or
//! that the verifier's error diagnostics include the expected code.
//! This pins the diagnostic surface: a refactor that silently stops
//! rejecting one of these programs (or starts rejecting it for the
//! wrong reason) fails here with the full report attached.

use ch_verify::{verify_clockhands, verify_riscv, verify_straight, Options, Report};

struct Case {
    name: String,
    isa: String,
    expect_code: Option<String>,
    expect_asm_err: Option<String>,
    src: String,
}

fn load_cases() -> Vec<Case> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/verify_corpus");
    let mut cases: Vec<Case> = std::fs::read_dir(dir)
        .expect("tests/verify_corpus exists")
        .filter_map(|e| {
            let p = e.expect("readable dir entry").path();
            (p.extension().and_then(|x| x.to_str()) == Some("s")).then_some(p)
        })
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let src = std::fs::read_to_string(&p).expect("readable corpus file");
            let header = |key: &str| {
                src.lines()
                    .find_map(|l| l.strip_prefix(key))
                    .map(|v| v.trim().to_string())
            };
            let isa = header("# isa:").unwrap_or_else(|| panic!("{name}: missing `# isa:`"));
            let expect_code = header("# expect:");
            let expect_asm_err = header("# expect-assemble-error:");
            assert!(
                expect_code.is_some() ^ expect_asm_err.is_some(),
                "{name}: exactly one of `# expect:` / `# expect-assemble-error:` required"
            );
            Case {
                name,
                isa,
                expect_code,
                expect_asm_err,
                src,
            }
        })
        .collect();
    cases.sort_by(|a, b| a.name.cmp(&b.name));
    cases
}

/// Assembles `case` and returns the verifier report, or the assembler's
/// error message.
fn assemble_and_verify(case: &Case) -> Result<Report, String> {
    let opts = Options::default();
    match case.isa.as_str() {
        "clockhands" => clockhands::asm::assemble(&case.src)
            .map(|p| verify_clockhands(&p, &opts))
            .map_err(|e| e.to_string()),
        "straight" => ch_baselines::straight::asm::assemble(&case.src)
            .map(|p| verify_straight(&p, &opts))
            .map_err(|e| e.to_string()),
        "riscv" => ch_baselines::riscv::asm::assemble(&case.src)
            .map(|p| verify_riscv(&p, &opts))
            .map_err(|e| e.to_string()),
        other => panic!("{}: unknown isa {other:?}", case.name),
    }
}

#[test]
fn corpus_programs_are_rejected_with_the_expected_diagnostic() {
    let cases = load_cases();
    assert!(
        cases.len() >= 10,
        "corpus shrank below 10 programs ({} left)",
        cases.len()
    );
    for case in &cases {
        match (
            assemble_and_verify(case),
            &case.expect_code,
            &case.expect_asm_err,
        ) {
            (Ok(report), Some(code), _) => {
                assert!(
                    report.errors().any(|d| d.code == code.as_str()),
                    "{}: expected {code} among errors, got:\n{}",
                    case.name,
                    report.render()
                );
            }
            (Ok(report), None, Some(msg)) => panic!(
                "{}: expected assembly to fail with {msg:?}, but it assembled; report:\n{}",
                case.name,
                report.render()
            ),
            (Err(err), _, Some(msg)) => {
                assert!(
                    err.contains(msg.as_str()),
                    "{}: assembler error {err:?} does not mention {msg:?}",
                    case.name
                );
            }
            (Err(err), Some(code), None) => panic!(
                "{}: expected the verifier to emit {code}, but assembly failed: {err}",
                case.name
            ),
            (_, None, None) => unreachable!("load_cases enforces one expectation"),
        }
    }
}

/// Each corpus program must be rejected for the *documented* reason and
/// not drown it in unrelated noise: every error code the verifier emits
/// is listed in the known set, so a new error class showing up in the
/// corpus is a conscious decision, not an accident.
#[test]
fn corpus_diagnostics_stay_within_the_documented_code_set() {
    const KNOWN: &[&str] = &[
        "E-UNINIT",
        "E-HOLE",
        "E-CLOBBER",
        "E-PATH",
        "E-DIST",
        "E-RETADDR",
        "E-RAKIND",
        "E-CSREAD",
        "E-CALLEE",
        "E-SP",
        "E-CFG",
        "E-FIXPOINT",
    ];
    for case in &load_cases() {
        if let Ok(report) = assemble_and_verify(case) {
            for d in report.errors() {
                assert!(
                    KNOWN.contains(&d.code),
                    "{}: undocumented error code {} in:\n{}",
                    case.name,
                    d.code,
                    report.render()
                );
            }
        }
    }
}
