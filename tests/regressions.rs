//! Replays every minimized fuzzer reproducer in `tests/regressions/`
//! through the full differential pipeline (three backends, three
//! interpreters, per-ISA simulator commit-stream check).
//!
//! Each `.kern` file in that directory is a program that once exposed a
//! real compiler or runtime bug; its header comment names the seed, the
//! original error, and the fix. `ch-fuzz` appends new files there
//! whenever a batch diverges, so a failure here means a regression of a
//! previously fixed bug — or a freshly minimized find awaiting one.

use ch_fuzz::run_differential;

#[test]
fn minimized_reproducers_stay_fixed() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/regressions");
    let mut cases: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/regressions exists")
        .filter_map(|e| {
            let p = e.expect("readable dir entry").path();
            (p.extension().and_then(|x| x.to_str()) == Some("kern")).then_some(p)
        })
        .collect();
    assert!(
        !cases.is_empty(),
        "no .kern reproducers found in {dir}; the corpus should never be empty"
    );
    cases.sort();
    for path in cases {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).expect("readable reproducer");
        match run_differential(&name, &src, ch_fuzz::DEFAULT_LIMIT) {
            Ok(Ok(_)) => {}
            Ok(Err(skip)) => panic!("{name}: reproducer skipped ({skip:?}); raise the limit"),
            Err(e) => panic!("{name}: regression: {e}"),
        }
    }
}
