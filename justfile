# Developer entry points (mirror of .github/workflows/ci.yml).

# Full tier-1 verification: release build + workspace tests.
verify: build test

build:
    cargo build --release --workspace

test:
    cargo test --workspace -q

# Deterministic suites only (skips the randomized property suites).
test-fast:
    cargo test -q --no-default-features

fmt:
    cargo fmt --all -- --check

clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# API docs with warnings promoted to errors, plus the executable doctests.
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
    cargo test --workspace --doc -q

# Cross-ISA differential fuzzing at the CI scale: register-machinery
# oracles, assembler round-trips, and 500 fixed-seed Kern programs
# through all three backends + interpreters + simulator commit checks.
# On a divergence the minimized reproducer lands in tests/regressions/
# and the reproducing PROPTEST_SEED is printed. Override with e.g.
# `just fuzz --cases 5000 --seed 31337`.
fuzz *ARGS:
    cargo run --release -p ch-fuzz -- --cases 500 --seed 49388 {{ARGS}}

# Planted-mutation calibration of the static verifier: corrupt one
# distance operand per case in compiled Clockhands/STRAIGHT output and
# fail unless >= 95% of window-escaping corruptions are caught before
# execution (DESIGN.md §8 explains the two corruption models).
planted *ARGS:
    cargo run --release -p ch-fuzz -- --planted --cases 500 --seed 49388 {{ARGS}}

# Statically verify every workload's compiled output on all three
# backends (lint warnings allowed and tabulated; errors are fatal).
verify-workloads:
    cargo run --release -p ch-bench --bin figures -- --scale test verify

# Engine benchmark snapshot: times the fast-path engine against the
# reference over the full figure sweep (byte-identity asserted on every
# config), rewrites BENCH_<pr>.json, and fails on a >25% sweep-throughput
# regression against the committed snapshot. Baselines are
# host-dependent: refresh one taken on a different machine with
# `CH_BENCH_SKIP_CHECK=1 just bench-json`.
bench-json *ARGS:
    cargo run --release -p ch-bench --bin figures -- --scale small bench {{ARGS}}

# Serving benchmark: embeds a sweep server on an ephemeral port, runs
# the full Fig. 13/14 sweep cold then warm over TCP, writes
# BENCH_7.json (cold/warm wall, dedup ratio, p50/p99 wait), and fails
# unless the warm repeat is >= 5x faster than cold (skip the gate with
# CH_BENCH_SKIP_CHECK=1). Then proves `figures --server` renders the
# full figure suite byte-identically to the in-process run.
serve-bench *ARGS:
    cargo run --release -p ch-serve -- bench --scale small {{ARGS}}
    cargo build --release -p ch-bench -p ch-serve
    ./scripts/serve_figures_diff.sh

# Optimization-layer snapshot: compiles every workload with the backend
# optimizations on and off (Clockhands + STRAIGHT), verifies both,
# validates both functionally, times both at W8, and rewrites
# BENCH_8.json with the static/dynamic deltas (see ch_bench::optreport).
opt-report *ARGS:
    cargo run --release -p ch-bench --bin figures -- --scale test opt {{ARGS}}

# Code-density snapshot: encodes every workload for all three ISAs
# under both binary encodings (fixed / compressed), round-trip-checks
# the bytes, simulates with byte-accurate fetch, and rewrites
# BENCH_9.json with bytes/inst, static size, fetch-bandwidth
# utilization, and I$ behaviour (see ch_bench::densityreport).
density *ARGS:
    cargo run --release -p ch-bench --bin figures -- --scale test density {{ARGS}}

# Everything CI runs.
ci: build test fmt clippy doc fuzz planted verify-workloads bench-json serve-bench opt-report density

# Regenerate every table/figure at test scale with all cores.
figures *ARGS:
    cargo run --release -p ch-bench --bin figures -- --scale test {{ARGS}}

# Start a resident sweep server (default 127.0.0.1:7878). Point
# `just figures --server 127.0.0.1:7878` or the ch-serve client
# subcommands (submit/sweep/stats) at it; see docs/PROTOCOL.md.
serve *ARGS:
    cargo run --release -p ch-serve -- serve {{ARGS}}

# Harness microbenchmarks (compilation / emulation / simulation speed).
bench:
    cargo bench -p ch-bench
