# Developer entry points (mirror of .github/workflows/ci.yml).

# Full tier-1 verification: release build + workspace tests.
verify: build test

build:
    cargo build --release --workspace

test:
    cargo test --workspace -q

# Deterministic suites only (skips the randomized property suites).
test-fast:
    cargo test -q --no-default-features

fmt:
    cargo fmt --all -- --check

clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# API docs with warnings promoted to errors, plus the executable doctests.
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
    cargo test --workspace --doc -q

# Cross-ISA differential fuzzing at the CI scale: register-machinery
# oracles, assembler round-trips, and 500 fixed-seed Kern programs
# through all three backends + interpreters + simulator commit checks.
# On a divergence the minimized reproducer lands in tests/regressions/
# and the reproducing PROPTEST_SEED is printed. Override with e.g.
# `just fuzz --cases 5000 --seed 31337`.
fuzz *ARGS:
    cargo run --release -p ch-fuzz -- --cases 500 --seed 49388 {{ARGS}}

# Planted-mutation calibration of the static verifier: corrupt one
# distance operand per case in compiled Clockhands/STRAIGHT output and
# fail unless >= 95% of window-escaping corruptions are caught before
# execution (DESIGN.md §8 explains the two corruption models).
planted *ARGS:
    cargo run --release -p ch-fuzz -- --planted --cases 500 --seed 49388 {{ARGS}}

# Statically verify every workload's compiled output on all three
# backends (lint warnings allowed and tabulated; errors are fatal).
verify-workloads:
    cargo run --release -p ch-bench --bin figures -- --scale test verify

# Engine benchmark snapshot: times the fast-path engine against the
# reference over the full figure sweep (byte-identity asserted on every
# config), rewrites BENCH_<pr>.json, and fails on a >25% sweep-throughput
# regression against the committed snapshot. Baselines are
# host-dependent: refresh one taken on a different machine with
# `CH_BENCH_SKIP_CHECK=1 just bench-json`.
bench-json *ARGS:
    cargo run --release -p ch-bench --bin figures -- --scale small bench {{ARGS}}

# Everything CI runs.
ci: build test fmt clippy doc fuzz planted verify-workloads bench-json

# Regenerate every table/figure at test scale with all cores.
figures *ARGS:
    cargo run --release -p ch-bench --bin figures -- --scale test {{ARGS}}

# Harness microbenchmarks (compilation / emulation / simulation speed).
bench:
    cargo bench -p ch-bench
